package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRollupWindowDeltasAndRates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ep.requests")
	c.Add(10)
	rp := NewRollup(r, RollupConfig{Interval: time.Hour}) // manual ticks only

	c.Add(5)
	time.Sleep(10 * time.Millisecond) // give the window a real wall duration
	w := rp.Tick()
	if w.Seq != 1 {
		t.Fatalf("first window seq = %d, want 1", w.Seq)
	}
	if got := w.Counters["ep.requests"]; got != 5 {
		t.Fatalf("window delta = %d, want 5 (pre-rollup counts must not leak in)", got)
	}
	rate := w.Rates["ep.requests"]
	if rate <= 0 {
		t.Fatalf("window rate = %g, want > 0", rate)
	}
	if wantRate := float64(5) / w.Dur().Seconds(); rate < wantRate*0.99 || rate > wantRate*1.01 {
		t.Fatalf("rate = %g, want ~%g", rate, wantRate)
	}

	// An idle second window reports zero delta, not the cumulative value.
	w2 := rp.Tick()
	if got := w2.Counters["ep.requests"]; got != 0 {
		t.Fatalf("idle window delta = %d, want 0", got)
	}
	if w2.Seq != 2 {
		t.Fatalf("seq = %d, want 2", w2.Seq)
	}
}

func TestRollupWindowedHistQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ep.latency_us")
	// First window: fast observations.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	rp := NewRollup(r, RollupConfig{Interval: time.Hour})
	w := rp.Tick()
	if w.Hists["ep.latency_us"].Count != 0 {
		// NewRollup primed its baseline after the observations above.
		t.Fatalf("window observed pre-baseline events: %+v", w.Hists["ep.latency_us"])
	}

	// Second window: slow observations only. The cumulative histogram mixes
	// fast+slow, but the window must see only the slow ones.
	for i := 0; i < 100; i++ {
		h.Observe(1_000_000)
	}
	w = rp.Tick()
	hs := w.Hists["ep.latency_us"]
	if hs.Count != 100 {
		t.Fatalf("window count = %d, want 100", hs.Count)
	}
	if hs.P50 < 500_000 {
		t.Fatalf("windowed p50 = %d, want >= 500000 (cumulative p50 would be ~100)", hs.P50)
	}
	if len(hs.Buckets) == 0 {
		t.Fatal("window carries no bucket deltas")
	}
	// The cumulative snapshot, by contrast, straddles both populations.
	if cum := r.Snapshot().Hists["ep.latency_us"]; cum.Count != 200 {
		t.Fatalf("cumulative count = %d, want 200", cum.Count)
	}
}

func TestRollupRingWrapAndWindows(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	rp := NewRollup(r, RollupConfig{Interval: time.Hour, Windows: 4})
	for i := 0; i < 10; i++ {
		c.Add(1)
		rp.Tick()
	}
	if got := rp.Len(); got != 4 {
		t.Fatalf("Len = %d, want ring capacity 4", got)
	}
	ws := rp.Windows(0)
	if len(ws) != 4 {
		t.Fatalf("Windows(0) = %d windows, want 4", len(ws))
	}
	// Oldest-first, newest last, consecutive seqs ending at 10.
	for i, w := range ws {
		if want := uint64(7 + i); w.Seq != want {
			t.Fatalf("window %d seq = %d, want %d", i, w.Seq, want)
		}
	}
	last, ok := rp.Latest()
	if !ok || last.Seq != 10 {
		t.Fatalf("Latest = %+v/%v, want seq 10", last.Seq, ok)
	}
	if got := rp.Windows(2); len(got) != 2 || got[1].Seq != 10 {
		t.Fatalf("Windows(2) = %v, want the 2 newest ending at seq 10", got)
	}
}

func TestRollupStartStopAndOnTick(t *testing.T) {
	r := NewRegistry()
	rp := NewRollup(r, RollupConfig{Interval: time.Millisecond, Windows: 16})
	var mu sync.Mutex
	ticks := 0
	rp.OnTick(func(Window) {
		mu.Lock()
		ticks++
		mu.Unlock()
	})
	rp.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := ticks
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d ticks after 2s", n)
		}
		time.Sleep(time.Millisecond)
	}
	rp.Stop()
	rp.Stop() // idempotent
}

func TestRollupStopWithoutStart(t *testing.T) {
	rp := NewRollup(NewRegistry(), RollupConfig{})
	done := make(chan struct{})
	go func() { rp.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop deadlocked without Start")
	}
}

func TestRollupTickCarriesRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	rp := NewRollup(r, RollupConfig{Interval: time.Hour})
	w := rp.Tick()
	if g := w.Gauges["runtime.goroutines"]; g <= 0 {
		t.Fatalf("runtime.goroutines gauge = %d, want > 0", g)
	}
	if g := w.Gauges["runtime.heap_bytes"]; g <= 0 {
		t.Fatalf("runtime.heap_bytes gauge = %d, want > 0", g)
	}
}

func TestTimeseriesHandler(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	rp := NewRollup(r, RollupConfig{Interval: time.Hour, Windows: 8})
	c.Add(3)
	rp.Tick()
	rp.Tick()

	srv := httptest.NewServer(rp.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		IntervalSeconds float64  `json:"interval_seconds"`
		RingCapacity    int      `json:"ring_capacity"`
		Windows         []Window `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.RingCapacity != 8 || view.IntervalSeconds != 3600 {
		t.Fatalf("view meta = %+v", view)
	}
	if len(view.Windows) != 1 || view.Windows[0].Seq != 2 {
		t.Fatalf("?n=1 windows = %+v, want just seq 2", view.Windows)
	}

	if resp, err := srv.Client().Get(srv.URL + "?n=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("?n=bogus status = %d, want 400", resp.StatusCode)
		}
	}
}

func TestRollupOpenMetricsExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ep.requests").Add(7)
	r.Histogram("ep.latency_us").Observe(0)
	rp := NewRollup(r, RollupConfig{Interval: time.Hour})
	r.Counter("ep.requests").Add(5)
	r.Histogram("ep.latency_us").Observe(250)
	rp.Tick()

	var sb strings.Builder
	if _, err := rp.writeOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"ceresz_rollup_interval_seconds 3600",
		"ceresz_rollup_windows 1",
		"# TYPE ceresz_ep_requests_rate gauge",
		"# TYPE ceresz_ep_latency_us_window summary",
		"ceresz_ep_latency_us_window_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("rollup exposition missing %q\n%s", want, body)
		}
	}
}
