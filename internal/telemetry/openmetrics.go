package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// Prometheus/OpenMetrics text exposition of a snapshot, served at
// /debug/metrics behind cereszbench's -debug-addr. The mapping follows
// the conventions scrapers expect:
//
//	counter → counter        ceresz_sim_events
//	gauge   → two gauges     ceresz_sim_workers, ceresz_sim_workers_max
//	timer   → summary        _count/_sum in seconds, plus _min/_max gauges
//	hist    → summary        quantile="0.5|0.95|0.99" labels, _count/_sum
//
// Instrument names sanitize to the metric charset (dots → underscores)
// under a "ceresz_" namespace. Every family carries a `# HELP` line —
// the Describe'd text when the instrument was documented, a generated
// fallback otherwise — and the exposition leads with a ceresz_build_info
// gauge identifying the binary (Go version + VCS revision).

// metricName sanitizes an instrument name into the Prometheus charset.
func metricName(name string) string {
	var sb strings.Builder
	sb.WriteString("ceresz_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// helpEscape escapes HELP text per the Prometheus text format: backslash
// and newline only.
func helpEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// helpFor resolves an instrument's HELP text: the Describe'd line when
// present, a generated fallback naming the original instrument otherwise.
func (s Snapshot) helpFor(name, kind string) string {
	if h, ok := s.Help[name]; ok && h != "" {
		return helpEscape(h)
	}
	return "ceresz " + kind + " instrument " + helpEscape(name) + "."
}

// buildInfoLine renders the ceresz_build_info family once per process:
// a constant 1-valued gauge whose labels identify the running binary.
var buildInfoLine = sync.OnceValue(func() string {
	revision := "unknown"
	modified := ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
	}
	if modified == "true" {
		revision += "-dirty"
	}
	return fmt.Sprintf(
		"# HELP ceresz_build_info Build identity of the running binary; constant 1.\n"+
			"# TYPE ceresz_build_info gauge\n"+
			"ceresz_build_info{go_version=%q,revision=%q} 1\n",
		runtime.Version(), revision)
})

// WriteOpenMetrics renders the snapshot in the Prometheus text format.
func (s Snapshot) WriteOpenMetrics(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := emit("%s", buildInfoLine()); err != nil {
		return total, err
	}
	for _, name := range sortedKeys(s.Counters) {
		mn := metricName(name)
		if err := emit("# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			mn, s.helpFor(name, "counter"), mn, mn, s.Counters[name]); err != nil {
			return total, err
		}
	}
	// Gauge snapshots carry a synthetic "<name>.max" companion; emit it as
	// its own gauge next to the base metric rather than as a duplicate.
	for _, name := range sortedKeys(s.Gauges) {
		if strings.HasSuffix(name, ".max") {
			continue
		}
		mn := metricName(name)
		if err := emit("# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			mn, s.helpFor(name, "gauge"), mn, mn, s.Gauges[name]); err != nil {
			return total, err
		}
		if max, ok := s.Gauges[name+".max"]; ok {
			if err := emit("# HELP %s_max High-water mark of %s since process start.\n# TYPE %s_max gauge\n%s_max %d\n",
				mn, mn, mn, mn, max); err != nil {
				return total, err
			}
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		t := s.Timers[name]
		mn := metricName(name) + "_seconds"
		if err := emit("# HELP %s %s\n# TYPE %s summary\n%s_count %d\n%s_sum %g\n",
			mn, s.helpFor(name, "timer"), mn, mn, t.Count, mn, float64(t.SumNs)/1e9); err != nil {
			return total, err
		}
		if err := emit("# HELP %s_min Shortest observation of %s since process start.\n# TYPE %s_min gauge\n%s_min %g\n"+
			"# HELP %s_max Longest observation of %s since process start.\n# TYPE %s_max gauge\n%s_max %g\n",
			mn, mn, mn, mn, float64(t.MinNs)/1e9,
			mn, mn, mn, mn, float64(t.MaxNs)/1e9); err != nil {
			return total, err
		}
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		mn := metricName(name)
		if err := emit("# HELP %s %s\n# TYPE %s summary\n",
			mn, s.helpFor(name, "histogram"), mn); err != nil {
			return total, err
		}
		for _, q := range [...]struct {
			label string
			v     int64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			if err := emit("%s{quantile=%q} %d\n", mn, q.label, q.v); err != nil {
				return total, err
			}
		}
		if err := emit("%s_sum %d\n%s_count %d\n", mn, h.Sum, mn, h.Count); err != nil {
			return total, err
		}
	}
	return total, nil
}

// MetricsHandler returns an http.Handler serving the registry in the
// Prometheus text exposition format — the /debug/metrics endpoint. The
// scrape refreshes the runtime.* gauges first, then renders the cumulative
// snapshot, then appends the rollup's windowed series and the SLO engine's
// gauges when a time-series layer is attached to the registry.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		r.UpdateRuntimeGauges()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := r.Snapshot().WriteOpenMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if rp := r.rollup.Load(); rp != nil {
			if _, err := rp.writeOpenMetrics(w); err != nil {
				return
			}
		}
		if e := r.slo.Load(); e != nil {
			_, _ = e.writeOpenMetrics(w)
		}
	})
}
