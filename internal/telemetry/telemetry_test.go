package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("counter %d, want 7", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("g")
	g.Add(2)
	g.Add(3)
	g.Add(-4)
	if g.Value() != 1 || g.Max() != 5 {
		t.Fatalf("gauge %d max %d, want 1 max 5", g.Value(), g.Max())
	}
	g.Set(9)
	if g.Value() != 9 || g.Max() != 9 {
		t.Fatalf("gauge after Set: %d max %d", g.Value(), g.Max())
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	c := r.Counter("c")
	g := r.Gauge("g")
	tm := r.Timer("t")
	h := r.Histogram("h")
	c.Add(1)
	g.Add(1)
	sp := tm.Start()
	time.Sleep(time.Millisecond)
	sp.End()
	tm.Observe(time.Second)
	h.Observe(42)
	s := r.Snapshot()
	if s.Counters["c"] != 0 || s.Gauges["g"] != 0 || s.Timers["t"].Count != 0 || s.Hists["h"].Count != 0 {
		t.Fatalf("disabled registry recorded: %+v", s)
	}
	// Re-enabling makes previously handed-out instruments live again.
	r.SetEnabled(true)
	c.Add(1)
	if c.Value() != 1 {
		t.Fatal("instrument dead after re-enable")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var tm *Timer
	var h *Histogram
	c.Add(1)
	g.Set(1)
	g.Add(1)
	tm.Observe(time.Second)
	tm.Start().End()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil instruments not inert")
	}
}

func TestTimerStats(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("t")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	s := r.Snapshot().Timers["t"]
	if s.Count != 2 || s.SumNs != int64(40*time.Millisecond) {
		t.Fatalf("timer stats %+v", s)
	}
	if s.MinNs != int64(10*time.Millisecond) || s.MaxNs != int64(30*time.Millisecond) {
		t.Fatalf("timer min/max %+v", s)
	}
	if s.Mean() != 20*time.Millisecond {
		t.Fatalf("mean %v", s.Mean())
	}
	if empty := r.Timer("empty"); empty != nil {
		if st := r.Snapshot().Timers["empty"]; st.MinNs != 0 || st.Count != 0 {
			t.Fatalf("empty timer stats %+v", st)
		}
	}
}

func TestSpanMeasuresElapsed(t *testing.T) {
	r := NewRegistry()
	sp := r.Timer("t").Start()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if s := r.Snapshot().Timers["t"]; s.Count != 1 || s.SumNs < int64(time.Millisecond) {
		t.Fatalf("span recorded %+v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	h.Observe(0) // bucket 0 (upper bound 0)
	h.Observe(1) // bit length 1 → upper bound 1
	h.Observe(5) // bit length 3 → upper bound 7
	h.Observe(5)
	h.Observe(-3) // clamped to 0
	s := r.Snapshot().Hists["h"]
	if s.Count != 5 || s.Sum != 11 {
		t.Fatalf("hist %+v", s)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[7] != 2 {
		t.Fatalf("hist buckets %+v", s.Buckets)
	}
}

func TestSnapshotJSONAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.calls").Add(2)
	r.Gauge("a.workers").Add(1)
	r.Timer("a.dur").Observe(time.Millisecond)
	r.Histogram("a.bytes").Observe(100)
	s := r.Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.calls"] != 2 {
		t.Fatalf("round-trip lost counter: %s", b)
	}
	out := s.String()
	for _, want := range []string{"a.calls", "a.workers", "a.dur", "a.bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			tm := r.Timer("t")
			for i := 0; i < 1000; i++ {
				c.Add(1)
				g.Add(1)
				g.Add(-1)
				tm.Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8000 || s.Timers["t"].Count != 8000 {
		t.Fatalf("lost events: %+v", s)
	}
	if s.Gauges["g"] != 0 {
		t.Fatalf("gauge drifted to %d", s.Gauges["g"])
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["hits"] != 3 {
		t.Fatalf("handler snapshot %+v", s)
	}
}

func TestDefaultEnableDisable(t *testing.T) {
	if Enabled() {
		t.Fatal("Default registry should start disabled")
	}
	Enable()
	defer Disable()
	if !Enabled() {
		t.Fatal("Enable did not stick")
	}
	C("test.default").Add(1)
	if Default.Snapshot().Counters["test.default"] != 1 {
		t.Fatal("Default counter lost an event")
	}
}

// BenchmarkCounterDisabled measures the per-event cost of an instrument on
// a disabled registry — the "compiles down to no-op calls" requirement:
// one atomic load and a branch.
func BenchmarkCounterDisabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(false)
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkCounterEnabled measures the enabled per-event cost (one atomic
// add).
func BenchmarkCounterEnabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkSpanDisabled measures a Start/End pair on a disabled registry.
func BenchmarkSpanDisabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(false)
	tm := r.Timer("t")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Start().End()
	}
}

// BenchmarkSpanEnabled measures a live Start/End pair (two clock reads plus
// four atomics).
func BenchmarkSpanEnabled(b *testing.B) {
	r := NewRegistry()
	tm := r.Timer("t")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Start().End()
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q")
	// 100 observations of 100: every quantile lands inside bucket 7
	// ([64,127]), so the estimates are exact to bucket resolution.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	hs := r.Snapshot().Hists["q"]
	for _, q := range []int64{hs.P50, hs.P95, hs.P99} {
		if q < 64 || q > 127 {
			t.Fatalf("quantile %d outside the single occupied bucket [64,127]: %+v", q, hs)
		}
	}
	if hs.P50 > hs.P95 || hs.P95 > hs.P99 {
		t.Fatalf("quantiles not monotone: %+v", hs)
	}

	// Skewed distribution: 90 small values, 10 huge. p50 stays small;
	// p95 and p99 cross into the huge values' bucket.
	h2 := r.Histogram("skew")
	for i := 0; i < 90; i++ {
		h2.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(1 << 20)
	}
	hs2 := r.Snapshot().Hists["skew"]
	if hs2.P50 != 1 {
		t.Fatalf("p50 = %d, want 1: %+v", hs2.P50, hs2)
	}
	if hs2.P95 < 1<<19 || hs2.P99 < 1<<19 {
		t.Fatalf("p95/p99 = %d/%d, want within the 2^20 bucket: %+v", hs2.P95, hs2.P99, hs2)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	hs := r.Snapshot().Hists // no histograms at all
	if len(hs) != 0 {
		t.Fatalf("unexpected hists %+v", hs)
	}
	h := r.Histogram("empty")
	_ = h
	if got := r.Snapshot().Hists["empty"]; got.P50 != 0 || got.P99 != 0 {
		t.Fatalf("empty histogram quantiles %+v", got)
	}
	h.Observe(0)
	if got := r.Snapshot().Hists["empty"]; got.P50 != 0 || got.P99 != 0 {
		t.Fatalf("all-zero histogram quantiles %+v", got)
	}
}

func TestWriteToShowsQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat").Observe(1000)
	out := r.Snapshot().String()
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p99=") {
		t.Fatalf("WriteTo output missing quantiles:\n%s", out)
	}
}

func TestMetricsHandlerServesOpenMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.events").Add(42)
	r.Gauge("sim.workers").Set(4)
	r.Timer("sim.run_wall").Observe(1500 * time.Millisecond)
	r.Histogram("stream.chunk_compressed_bytes").Observe(4096)
	srv := httptest.NewServer(r.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE ceresz_sim_events counter",
		"ceresz_sim_events 42",
		"# TYPE ceresz_sim_workers gauge",
		"ceresz_sim_workers 4",
		"ceresz_sim_workers_max 4",
		"# TYPE ceresz_sim_run_wall_seconds summary",
		"ceresz_sim_run_wall_seconds_count 1",
		"ceresz_sim_run_wall_seconds_sum 1.5",
		"# TYPE ceresz_stream_chunk_compressed_bytes summary",
		`ceresz_stream_chunk_compressed_bytes{quantile="0.99"}`,
		"ceresz_stream_chunk_compressed_bytes_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
}
