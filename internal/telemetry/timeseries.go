package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Windowed time-series rollups over a Registry. Everything the registry
// exports is cumulative (counters since boot, histograms since boot),
// which is the right substrate but the wrong unit for operating a fleet:
// an on-call human needs rates, deltas and *recent* quantiles — cuSZ's
// evaluation methodology measures sustained windowed throughput, not
// lifetime averages, and the serving telemetry should speak the same
// language. A Rollup keeps a fixed ring of per-interval aggregates
// computed by a background ticker that diffs full-resolution snapshots:
//
//   - the hot path is untouched — instruments stay the same atomics, the
//     ticker reads them (rawSnapshot) at the interval and diffs off-path;
//   - each Window carries counter deltas and rates, gauge levels, timer
//     deltas, and per-window histogram quantiles computed from bucket
//     deltas (what was p99 *in the last 5 seconds*, not since boot);
//   - the ring is the substrate for the SLO engine (slo.go) and the
//     flight recorder (flight.go), and is served raw at /debug/timeseries.
//
// Windows are immutable once published, so readers copy slice headers
// under the mutex and work lock-free afterwards.

// RollupConfig tunes a Rollup. The zero value keeps one hour of 5-second
// windows.
type RollupConfig struct {
	// Interval is the window width (0 = 5s).
	Interval time.Duration
	// Windows is the ring capacity (0 = 720 — one hour at 5s).
	Windows int
}

func (c RollupConfig) withDefaults() RollupConfig {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.Windows <= 0 {
		c.Windows = 720
	}
	return c
}

// Window is one closed rollup interval: deltas and rates between two
// registry snapshots. All maps are written once at tick time and never
// mutated after publication.
type Window struct {
	// Seq numbers windows from 1; the ring drops old ones but Seq keeps
	// counting, so consumers can detect gaps after a stall.
	Seq   uint64    `json:"seq"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Counters holds per-counter deltas over the window; Rates the same
	// deltas divided by the window's actual wall duration.
	Counters map[string]int64   `json:"counters,omitempty"`
	Rates    map[string]float64 `json:"rates,omitempty"`
	// Gauges holds instantaneous gauge levels at window end.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Timers holds per-window Count/Sum deltas (Min/Max are lifetime
	// properties and stay zero here).
	Timers map[string]TimerStats `json:"timers,omitempty"`
	// Hists holds per-window histogram aggregates: count/sum deltas,
	// bucket deltas, and quantiles interpolated from those deltas — the
	// windowed p50/p95/p99.
	Hists map[string]HistStats `json:"histograms,omitempty"`
}

// Dur returns the window's actual wall duration.
func (w Window) Dur() time.Duration { return w.End.Sub(w.Start) }

// Rollup computes and retains windows over one registry.
type Rollup struct {
	reg      *Registry
	interval time.Duration

	mu     sync.Mutex
	prev   rawState
	ring   []Window
	next   int
	filled bool
	seq    uint64
	onTick []func(Window)

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRollup attaches a rollup to reg and primes its baseline snapshot.
// Call Start to run the background ticker, or Tick directly (tests, or a
// caller with its own scheduler). A registry carries at most one rollup;
// attaching a second replaces the first in the registry's exposition.
func NewRollup(reg *Registry, cfg RollupConfig) *Rollup {
	cfg = cfg.withDefaults()
	rp := &Rollup{
		reg:      reg,
		interval: cfg.Interval,
		prev:     reg.rawSnapshot(time.Now()),
		ring:     make([]Window, cfg.Windows),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	reg.rollup.Store(rp)
	return rp
}

// Interval returns the configured window width.
func (rp *Rollup) Interval() time.Duration { return rp.interval }

// Start runs the ticker until Stop. Safe to call once.
func (rp *Rollup) Start() {
	rp.mu.Lock()
	rp.started = true
	rp.mu.Unlock()
	go func() {
		defer close(rp.done)
		t := time.NewTicker(rp.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rp.Tick()
			case <-rp.stop:
				return
			}
		}
	}()
}

// Stop halts the ticker (idempotent; a no-op if Start never ran). Windows
// already captured remain readable; Tick may still be called manually.
func (rp *Rollup) Stop() {
	rp.stopOnce.Do(func() { close(rp.stop) })
	rp.mu.Lock()
	started := rp.started
	rp.mu.Unlock()
	if started {
		<-rp.done
	}
}

// OnTick registers a callback invoked after each window is published,
// outside the rollup lock (the flight recorder's trigger evaluation).
// Not safe to call concurrently with Start'ed ticking; register before.
func (rp *Rollup) OnTick(f func(Window)) {
	rp.mu.Lock()
	rp.onTick = append(rp.onTick, f)
	rp.mu.Unlock()
}

// Tick closes the current window: snapshot, diff against the previous
// snapshot, publish into the ring. Start calls it on the interval; tests
// and deterministic drivers call it directly.
func (rp *Rollup) Tick() Window {
	// Runtime health rides the rollup cadence so windows carry heap/GC/
	// goroutine gauges without a second poller.
	rp.reg.UpdateRuntimeGauges()

	rp.mu.Lock()
	// The snapshot happens under rp.mu: two racing Ticks must diff strictly
	// ordered snapshots, or the later-locked one would subtract a newer
	// baseline and publish negative deltas.
	cur := rp.reg.rawSnapshot(time.Now())
	w := diffWindow(rp.prev, cur)
	rp.seq++
	w.Seq = rp.seq
	rp.prev = cur
	rp.ring[rp.next] = w
	rp.next++
	if rp.next == len(rp.ring) {
		rp.next = 0
		rp.filled = true
	}
	cbs := rp.onTick
	rp.mu.Unlock()

	for _, f := range cbs {
		f(w)
	}
	return w
}

// diffWindow builds the window between two raw snapshots.
func diffWindow(prev, cur rawState) Window {
	w := Window{Start: prev.at, End: cur.at}
	secs := cur.at.Sub(prev.at).Seconds()
	if secs <= 0 {
		secs = 1e-9 // degenerate back-to-back ticks; keep rates finite
	}
	w.Counters = make(map[string]int64, len(cur.counters))
	w.Rates = make(map[string]float64, len(cur.counters))
	for name, v := range cur.counters {
		d := v - prev.counters[name]
		w.Counters[name] = d
		w.Rates[name] = float64(d) / secs
	}
	w.Gauges = make(map[string]int64, len(cur.gauges))
	for name, v := range cur.gauges {
		w.Gauges[name] = v
	}
	w.Timers = make(map[string]TimerStats, len(cur.timers))
	for name, t := range cur.timers {
		p := prev.timers[name]
		w.Timers[name] = TimerStats{Count: t.Count - p.Count, SumNs: t.SumNs - p.SumNs}
	}
	w.Hists = make(map[string]HistStats, len(cur.hists))
	for name, h := range cur.hists {
		p := prev.hists[name]
		hs := HistStats{Count: h.count - p.count, Sum: h.sum - p.sum}
		var counts [histBuckets]int64
		for i := range h.buckets {
			d := h.buckets[i] - p.buckets[i]
			counts[i] = d
			if d > 0 {
				if hs.Buckets == nil {
					hs.Buckets = map[int64]int64{}
				}
				_, upper := bucketBounds(i)
				hs.Buckets[upper] = d
			}
		}
		if hs.Count > 0 {
			hs.P50 = histQuantile(&counts, hs.Count, 0.50)
			hs.P95 = histQuantile(&counts, hs.Count, 0.95)
			hs.P99 = histQuantile(&counts, hs.Count, 0.99)
		}
		w.Hists[name] = hs
	}
	return w
}

// Len reports how many windows the ring currently holds.
func (rp *Rollup) Len() int {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.filled {
		return len(rp.ring)
	}
	return rp.next
}

// Windows returns up to n windows, oldest first, newest last (n <= 0 =
// all retained). Windows are immutable; the returned slice is a copy of
// headers only.
func (rp *Rollup) Windows(n int) []Window {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	size := rp.next
	if rp.filled {
		size = len(rp.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Window, 0, n)
	// Oldest-first: start n slots behind the write cursor.
	start := rp.next - n
	if start < 0 {
		start += len(rp.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, rp.ring[(start+i)%len(rp.ring)])
	}
	return out
}

// Latest returns the newest window, if any window has closed yet.
func (rp *Rollup) Latest() (Window, bool) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.seq == 0 {
		return Window{}, false
	}
	i := rp.next - 1
	if i < 0 {
		i = len(rp.ring) - 1
	}
	return rp.ring[i], true
}

// timeseriesView is the /debug/timeseries response document.
type timeseriesView struct {
	IntervalSeconds float64  `json:"interval_seconds"`
	RingCapacity    int      `json:"ring_capacity"`
	Windows         []Window `json:"windows"`
}

// Handler serves the rollup ring as JSON — the /debug/timeseries
// endpoint. ?n= bounds the window count (default 60, newest last).
func (rp *Rollup) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 60
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		view := timeseriesView{
			IntervalSeconds: rp.interval.Seconds(),
			RingCapacity:    len(rp.ring),
			Windows:         rp.Windows(n),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
}

// writeOpenMetrics appends the windowed series to a Prometheus scrape:
// per-counter `_rate` gauges and per-histogram `_window` quantile
// summaries from the latest closed window, plus ring metadata. Names are
// suffixed so they never collide with the cumulative series.
func (rp *Rollup) writeOpenMetrics(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := emit("# HELP ceresz_rollup_interval_seconds Width of one rollup window.\n# TYPE ceresz_rollup_interval_seconds gauge\nceresz_rollup_interval_seconds %g\n",
		rp.interval.Seconds()); err != nil {
		return total, err
	}
	last, ok := rp.Latest()
	if err := emit("# HELP ceresz_rollup_windows Closed rollup windows retained in the ring.\n# TYPE ceresz_rollup_windows gauge\nceresz_rollup_windows %d\n",
		rp.Len()); err != nil || !ok {
		return total, err
	}
	secs := last.Dur().Seconds()
	for _, name := range sortedKeys(last.Rates) {
		mn := metricName(name) + "_rate"
		if err := emit("# HELP %s Per-second rate of %s over the last %gs window.\n# TYPE %s gauge\n%s %g\n",
			mn, name, secs, mn, mn, last.Rates[name]); err != nil {
			return total, err
		}
	}
	for _, name := range sortedKeys(last.Hists) {
		h := last.Hists[name]
		mn := metricName(name) + "_window"
		if err := emit("# HELP %s Windowed quantiles of %s over the last %gs window.\n# TYPE %s summary\n",
			mn, name, secs, mn); err != nil {
			return total, err
		}
		for _, q := range [...]struct {
			label string
			v     int64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			if err := emit("%s{quantile=%q} %d\n", mn, q.label, q.v); err != nil {
				return total, err
			}
		}
		if err := emit("%s_sum %d\n%s_count %d\n", mn, h.Sum, mn, h.Count); err != nil {
			return total, err
		}
	}
	return total, nil
}
