package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("debug.test_requests").Add(3)
	r.Histogram("debug.test_latency").Observe(12)

	srv := httptest.NewServer(DebugMux(r, "debugmux-test"))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/metrics"); code != 200 ||
		!strings.Contains(body, "ceresz_debug_test_requests 3") {
		t.Fatalf("/debug/metrics: code %d, body %q", code, body)
	}
	if code, body := get("/debug/telemetry"); code != 200 ||
		!strings.Contains(body, "debug.test_latency") {
		t.Fatalf("/debug/telemetry: code %d, body %.200q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 ||
		!strings.Contains(body, "debugmux-test") {
		t.Fatalf("/debug/vars: code %d, body %.200q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
}

func TestPublishExpvarOnce(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	if err := a.PublishExpvarOnce("publish-once-test"); err != nil {
		t.Fatal(err)
	}
	if err := a.PublishExpvarOnce("publish-once-test"); err != nil {
		t.Fatalf("republish of same registry: %v", err)
	}
	if err := b.PublishExpvarOnce("publish-once-test"); err == nil {
		t.Fatal("different registry under a taken name did not error")
	}
}
