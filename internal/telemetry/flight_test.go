package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// readIncidents globs and decodes every incident file in dir.
func readIncidents(t *testing.T, dir string) []Incident {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Incident, 0, len(matches))
	for _, m := range matches {
		raw, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		var inc Incident
		if err := json.Unmarshal(raw, &inc); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		out = append(out, inc)
	}
	return out
}

func TestFlightBurnRateTrigger(t *testing.T) {
	r := NewRegistry()
	rp := NewRollup(r, RollupConfig{Interval: time.Hour, Windows: 16})
	e := NewSLOEngine(rp, []Objective{{
		Spec:         mustSpec(t, "compress:err:99"),
		TotalCounter: "ep.requests",
		BadCounter:   "ep.status_5xx",
	}}, 0)
	dir := t.TempDir()
	fr := NewFlightRecorder(FlightConfig{
		Dir:         dir,
		MinInterval: time.Millisecond,
		FiveXXBurst: -1, // isolate the burn trigger
	}, rp, e, func(buf *bytes.Buffer) error {
		buf.WriteString(`[{"ph":"X","name":"req","ts":0,"dur":5}]`)
		return nil
	})

	// 100% bad traffic: burn rate 100 >> the default threshold 2.
	r.Counter("ep.requests").Add(10)
	r.Counter("ep.status_5xx").Add(10)
	rp.Tick()

	incs := readIncidents(t, dir)
	if len(incs) != 1 {
		t.Fatalf("%d incidents, want 1", len(incs))
	}
	inc := incs[0]
	if inc.Schema != incidentSchema {
		t.Fatalf("schema %q", inc.Schema)
	}
	if !strings.Contains(inc.Reason, "burn-rate:compress:err:99") {
		t.Fatalf("reason %q", inc.Reason)
	}
	if len(inc.Windows) == 0 {
		t.Fatal("incident has no rollup windows")
	}
	if len(inc.SLO) != 1 || inc.SLO[0].BurnRate5m < 50 {
		t.Fatalf("incident slo %+v", inc.SLO)
	}
	if inc.Runtime.Goroutines <= 0 {
		t.Fatalf("incident runtime %+v", inc.Runtime)
	}
	// The trace rides under the Chrome trace-event key, loadable as-is.
	var events []map[string]any
	if err := json.Unmarshal(inc.TraceEvents, &events); err != nil || len(events) != 1 {
		t.Fatalf("traceEvents %s: %v", inc.TraceEvents, err)
	}
	if fr.dumps.Value() != 1 {
		t.Fatalf("flight.dumps = %d", fr.dumps.Value())
	}
}

func TestFlight5xxBurstTrigger(t *testing.T) {
	r := NewRegistry()
	rp := NewRollup(r, RollupConfig{Interval: time.Hour, Windows: 16})
	dir := t.TempDir()
	NewFlightRecorder(FlightConfig{
		Dir:         dir,
		MinInterval: time.Millisecond,
		FiveXXBurst: 5,
	}, rp, nil, nil)

	r.Counter("server.compress.status_5xx").Add(3)
	rp.Tick()
	if incs := readIncidents(t, dir); len(incs) != 0 {
		t.Fatalf("burst of 3 triggered %d incidents, threshold is 5", len(incs))
	}
	r.Counter("server.compress.status_5xx").Add(4)
	r.Counter("server.bundle.status_5xx").Add(2) // 6 in-window across endpoints
	rp.Tick()
	incs := readIncidents(t, dir)
	if len(incs) != 1 || !strings.Contains(incs[0].Reason, "5xx-burst:6") {
		t.Fatalf("incidents %+v", incs)
	}
}

func TestFlightP99SpikeTrigger(t *testing.T) {
	r := NewRegistry()
	rp := NewRollup(r, RollupConfig{Interval: time.Hour, Windows: 32})
	dir := t.TempDir()
	NewFlightRecorder(FlightConfig{
		Dir:            dir,
		MinInterval:    time.Millisecond,
		FiveXXBurst:    -1,
		P99SpikeFactor: 4,
	}, rp, nil, nil)

	h := r.Histogram("ep.latency_us")
	// Build a steady baseline: several windows of ~100µs p99.
	for w := 0; w < 5; w++ {
		for i := 0; i < 50; i++ {
			h.Observe(100)
		}
		rp.Tick()
	}
	if incs := readIncidents(t, dir); len(incs) != 0 {
		t.Fatalf("steady baseline triggered %d incidents", len(incs))
	}
	// Spike window: p99 jumps ~100x over the baseline mean.
	for i := 0; i < 50; i++ {
		h.Observe(10_000)
	}
	rp.Tick()
	incs := readIncidents(t, dir)
	if len(incs) != 1 || !strings.Contains(incs[0].Reason, "p99-spike:ep.latency_us") {
		t.Fatalf("incidents %+v", incs)
	}
}

func TestFlightRateLimitAndForce(t *testing.T) {
	r := NewRegistry()
	rp := NewRollup(r, RollupConfig{Interval: time.Hour, Windows: 8})
	dir := t.TempDir()
	fr := NewFlightRecorder(FlightConfig{Dir: dir, MinInterval: time.Hour}, rp, nil, nil)

	if path, err := fr.Dump("first", false); err != nil || path == "" {
		t.Fatalf("first dump: %q, %v", path, err)
	}
	// Second trigger inside the window is suppressed...
	if path, err := fr.Dump("second", false); err != nil || path != "" {
		t.Fatalf("rate-limited dump: %q, %v", path, err)
	}
	if fr.suppressed.Value() != 1 {
		t.Fatalf("flight.suppressed = %d", fr.suppressed.Value())
	}
	// ...but a manual (force) dump goes through.
	if path, err := fr.Dump("manual", true); err != nil || path == "" {
		t.Fatalf("forced dump: %q, %v", path, err)
	}
	if got := len(readIncidents(t, dir)); got != 2 {
		t.Fatalf("%d incidents, want 2", got)
	}
}

func TestFlightPrune(t *testing.T) {
	r := NewRegistry()
	rp := NewRollup(r, RollupConfig{Interval: time.Hour, Windows: 8})
	dir := t.TempDir()
	fr := NewFlightRecorder(FlightConfig{Dir: dir, MaxIncidents: 3}, rp, nil, nil)
	for i := 0; i < 6; i++ {
		if _, err := fr.Dump("n", true); err != nil {
			t.Fatal(err)
		}
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if len(matches) != 3 {
		t.Fatalf("%d incident files after prune, want 3", len(matches))
	}
}

func TestFlightHandlers(t *testing.T) {
	r := NewRegistry()
	rp := NewRollup(r, RollupConfig{Interval: time.Hour, Windows: 8})
	dir := t.TempDir()
	fr := NewFlightRecorder(FlightConfig{Dir: dir}, rp, nil, nil)

	mux := http.NewServeMux()
	mux.Handle("/debug/flight", fr.StatusHandler())
	mux.Handle("/debug/flight/dump", fr.DumpHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// GET on the dump endpoint is refused.
	resp, err := srv.Client().Get(srv.URL + "/debug/flight/dump")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET dump status %d", resp.StatusCode)
	}

	resp, err = srv.Client().Post(srv.URL+"/debug/flight/dump?reason=drill", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dumped struct {
		File string `json:"file"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dumped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := os.Stat(dumped.File); err != nil {
		t.Fatalf("dumped file: %v", err)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Dumps      int64  `json:"dumps"`
		LastReason string `json:"last_reason"`
		LastFile   string `json:"last_file"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.Dumps != 1 || view.LastReason != "drill" || view.LastFile != dumped.File {
		t.Fatalf("status view %+v", view)
	}
}
