package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file holds the strict exposition gate: instead of grepping for a
// few known substrings, every line of /debug/metrics is parsed against
// the Prometheus text format — names sanitized to the metric charset,
// every family introduced by a # HELP line and a # TYPE line before its
// first sample, every value float-parsable, and counters monotone across
// scrapes racing concurrent writers.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe      = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
	typeRe       = regexp.MustCompile(`^(counter|gauge|summary|histogram|untyped)$`)
)

// parsedExposition is one scrape, decomposed.
type parsedExposition struct {
	help    map[string]string  // family -> help text
	types   map[string]string  // family -> type
	samples map[string]float64 // full sample name (labels included) -> value
}

// sampleFamily maps a sample name to the family its HELP/TYPE lines
// introduce: quantile'd samples belong to their base name; _sum/_count
// belong to the summary family when one is declared.
func (p *parsedExposition) sampleFamily(name string) string {
	if _, ok := p.types[name]; ok {
		return name
	}
	for _, suffix := range [...]string{"_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if p.types[base] == "summary" || p.types[base] == "histogram" {
				return base
			}
		}
	}
	return name
}

// parseExposition validates line syntax and the HELP/TYPE-before-sample
// ordering, failing the test on the first malformed line.
func parseExposition(t *testing.T, r io.Reader) *parsedExposition {
	t.Helper()
	p := &parsedExposition{
		help:    map[string]string{},
		types:   map[string]string{},
		samples: map[string]float64{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d %q: %s", lineNo, line, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				fail("HELP without text")
			}
			if !metricNameRe.MatchString(name) {
				fail("bad family name %q", name)
			}
			if _, dup := p.help[name]; dup {
				fail("duplicate HELP for %q", name)
			}
			p.help[name] = help
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				fail("TYPE wants name and kind")
			}
			name, kind := fields[0], fields[1]
			if !metricNameRe.MatchString(name) {
				fail("bad family name %q", name)
			}
			if !typeRe.MatchString(kind) {
				fail("bad type %q", kind)
			}
			if _, dup := p.types[name]; dup {
				fail("duplicate TYPE for %q", name)
			}
			if _, ok := p.help[name]; !ok {
				fail("TYPE before HELP for %q", name)
			}
			p.types[name] = kind
		case strings.HasPrefix(line, "#"):
			fail("unrecognized comment")
		default:
			// Sample: name[{labels}] value
			idx := strings.LastIndexByte(line, ' ')
			if idx < 0 {
				fail("sample without value")
			}
			nameAndLabels, valStr := line[:idx], line[idx+1:]
			val, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				fail("value %q: %v", valStr, err)
			}
			name := nameAndLabels
			if open := strings.IndexByte(nameAndLabels, '{'); open >= 0 {
				if !strings.HasSuffix(nameAndLabels, "}") {
					fail("unterminated label set")
				}
				name = nameAndLabels[:open]
				labels := nameAndLabels[open+1 : len(nameAndLabels)-1]
				for _, pair := range splitLabels(labels) {
					if !labelRe.MatchString(pair) {
						fail("bad label pair %q", pair)
					}
				}
			}
			if !metricNameRe.MatchString(name) {
				fail("bad sample name %q", name)
			}
			family := p.sampleFamily(name)
			if _, ok := p.types[family]; !ok {
				fail("sample before TYPE (family %q)", family)
			}
			if _, ok := p.help[family]; !ok {
				fail("sample before HELP (family %q)", family)
			}
			if _, dup := p.samples[nameAndLabels]; dup {
				fail("duplicate sample %q", nameAndLabels)
			}
			p.samples[nameAndLabels] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return p
}

// splitLabels splits `a="b",c="d"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// fullRegistry builds a registry exercising every instrument kind plus
// the rollup and SLO exposition layers.
func fullRegistry(t *testing.T) (*Registry, *Rollup) {
	t.Helper()
	r := NewRegistry()
	r.Describe("server.compress.requests", "Requests admitted.")
	r.Counter("server.compress.requests").Add(7)
	r.Counter("undocumented.counter").Add(1) // exercises the fallback HELP
	r.Gauge("server.queue_depth").Set(3)
	r.Timer("core.compress").Observe(1500 * time.Microsecond)
	r.Histogram("server.compress.latency_us").Observe(250)
	rp := NewRollup(r, RollupConfig{Interval: time.Hour, Windows: 8})
	NewSLOEngine(rp, []Objective{{
		Spec:     mustSpec(t, "compress:p99<1ms:99"),
		HistName: "server.compress.latency_us",
	}}, 0)
	r.Histogram("server.compress.latency_us").Observe(90)
	rp.Tick()
	return r, rp
}

func TestExpositionStrictlyWellFormed(t *testing.T) {
	r, _ := fullRegistry(t)
	srv := httptest.NewServer(r.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	p := parseExposition(t, resp.Body)

	// The layers all made it into one scrape.
	for _, family := range []string{
		"ceresz_build_info",
		"ceresz_server_compress_requests",
		"ceresz_undocumented_counter",
		"ceresz_runtime_goroutines",
		"ceresz_rollup_interval_seconds",
		"ceresz_server_compress_requests_rate",
		"ceresz_server_compress_latency_us_window",
		"ceresz_slo_burn_rate_5m",
	} {
		if _, ok := p.types[family]; !ok {
			t.Errorf("family %q missing from exposition", family)
		}
	}
	// Describe'd text rides through; undocumented instruments get the
	// generated fallback naming the original instrument.
	if got := p.help["ceresz_server_compress_requests"]; got != "Requests admitted." {
		t.Errorf("described help = %q", got)
	}
	if got := p.help["ceresz_undocumented_counter"]; !strings.Contains(got, "undocumented.counter") {
		t.Errorf("fallback help = %q", got)
	}
	// build_info carries identifying labels and the constant value 1.
	found := false
	for name, val := range p.samples {
		if strings.HasPrefix(name, "ceresz_build_info{") {
			found = true
			if val != 1 {
				t.Errorf("build_info = %g, want 1", val)
			}
			if !strings.Contains(name, `go_version="go`) || !strings.Contains(name, "revision=") {
				t.Errorf("build_info labels: %s", name)
			}
		}
	}
	if !found {
		t.Error("no ceresz_build_info sample")
	}
	if p.samples["ceresz_server_compress_requests"] != 7 {
		t.Errorf("counter sample = %g", p.samples["ceresz_server_compress_requests"])
	}
	// Runtime health gauges refresh on scrape.
	if p.samples["ceresz_runtime_goroutines"] <= 0 {
		t.Errorf("runtime goroutines = %g", p.samples["ceresz_runtime_goroutines"])
	}
	if p.samples["ceresz_runtime_heap_bytes"] <= 0 {
		t.Errorf("runtime heap bytes = %g", p.samples["ceresz_runtime_heap_bytes"])
	}
}

func TestCountersMonotoneUnderConcurrentScrape(t *testing.T) {
	r, rp := fullRegistry(t)
	srv := httptest.NewServer(r.MetricsHandler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("server.compress.requests")
			h := r.Histogram("server.compress.latency_us")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(1)
				h.Observe(int64(i%1000 + 1))
				if i%64 == 0 {
					rp.Tick()
				}
			}
		}(w)
	}

	prev := map[string]float64{}
	for scrape := 0; scrape < 20; scrape++ {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		p := parseExposition(t, resp.Body)
		resp.Body.Close()
		for name, val := range p.samples {
			family := p.sampleFamily(strings.SplitN(name, "{", 2)[0])
			// _window families carry per-window deltas — they fluctuate by
			// design; only cumulative counters and summary counts are
			// monotone.
			if strings.HasSuffix(family, "_window") {
				continue
			}
			isCount := strings.HasSuffix(name, "_count") &&
				(p.types[family] == "summary" || p.types[family] == "histogram")
			if p.types[name] != "counter" && !isCount {
				continue
			}
			if last, ok := prev[name]; ok && val < last {
				t.Fatalf("scrape %d: %s went backwards: %g -> %g", scrape, name, last, val)
			}
			prev[name] = val
		}
	}
	close(stop)
	wg.Wait()
}
