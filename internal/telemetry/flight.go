package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Anomaly-triggered flight recorder. The span rings and rollup windows
// already hold "what just happened" — but only until the next requests
// overwrite them, so by the time a human looks at /debug/requests the
// interesting window is gone. The recorder watches each closed rollup
// window and, when a trigger fires, atomically dumps a self-contained
// incident file to disk:
//
//   - triggers: an SLO burn rate over threshold, a 5xx burst inside one
//     window, or a windowed latency p99 spiking against its own trailing
//     baseline;
//   - the dump is one JSON document carrying the recent rollup windows,
//     the SLO evaluation, a runtime-health snapshot, the cumulative
//     metric snapshot, and the request spans as Chrome trace events under
//     the standard "traceEvents" key — so the same file that explains the
//     incident also loads directly in ui.perfetto.dev;
//   - dumps are rate-limited (triggers during a sustained incident don't
//     fill the disk) and bounded (oldest incident files pruned), and a
//     POST to /debug/flight/dump forces one regardless of the limiter.

// FlightConfig tunes a FlightRecorder. Only Dir is required.
type FlightConfig struct {
	// Dir receives incident files (created on first dump).
	Dir string
	// MinInterval rate-limits trigger-initiated dumps (0 = 30s).
	MinInterval time.Duration
	// BurnThreshold fires when any objective's 5m burn rate reaches it
	// (0 = 2; negative disables the trigger).
	BurnThreshold float64
	// FiveXXBurst fires when the 5xx responses inside one window reach it
	// (0 = 5; negative disables).
	FiveXXBurst int64
	// P99SpikeFactor fires when a latency histogram's windowed p99
	// reaches factor × its trailing-baseline p99 (0 = 4; negative
	// disables). Histograms whose name contains "latency" are watched.
	P99SpikeFactor float64
	// BaselineWindows is how many trailing windows form the spike
	// baseline (0 = 12); at least 3 populated ones are required before
	// the spike trigger can fire.
	BaselineWindows int
	// MinWindowCount is the observation floor below which a window's p99
	// is too noisy to trigger on (0 = 8).
	MinWindowCount int64
	// MaxIncidents bounds the incident files kept in Dir; oldest pruned
	// (0 = 16).
	MaxIncidents int
	// DumpWindows is how many recent windows an incident embeds (0 = 60).
	DumpWindows int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.MinInterval <= 0 {
		c.MinInterval = 30 * time.Second
	}
	if c.BurnThreshold == 0 {
		c.BurnThreshold = 2
	}
	if c.FiveXXBurst == 0 {
		c.FiveXXBurst = 5
	}
	if c.P99SpikeFactor == 0 {
		c.P99SpikeFactor = 4
	}
	if c.BaselineWindows <= 0 {
		c.BaselineWindows = 12
	}
	if c.MinWindowCount <= 0 {
		c.MinWindowCount = 8
	}
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = 16
	}
	if c.DumpWindows <= 0 {
		c.DumpWindows = 60
	}
	return c
}

// Incident is the on-disk dump document. TraceEvents holds a Chrome
// trace-event array, so the whole file loads in Perfetto as-is.
type Incident struct {
	Schema  string      `json:"schema"`
	Time    time.Time   `json:"time"`
	Seq     uint64      `json:"seq"`
	Reason  string      `json:"reason"`
	SLO     []SLOStatus `json:"slo,omitempty"`
	Windows []Window    `json:"windows"`
	Runtime RuntimeStats `json:"runtime"`
	Metrics Snapshot    `json:"metrics"`
	TraceEvents json.RawMessage `json:"traceEvents,omitempty"`
}

// incidentSchema versions the dump format.
const incidentSchema = "ceresz-incident-v1"

// FlightRecorder watches rollup windows and dumps incidents.
type FlightRecorder struct {
	cfg    FlightConfig
	rollup *Rollup
	engine *SLOEngine // nil = no burn trigger
	// traceFn streams the request spans as a Chrome trace-event JSON
	// array (the server's /debug/trace writer); nil embeds no trace.
	traceFn func(w *bytes.Buffer) error

	dumps      *Counter
	suppressed *Counter

	mu         sync.Mutex
	last       time.Time
	seq        uint64
	lastReason string
	lastFile   string
}

// NewFlightRecorder builds a recorder over rp's windows and registers its
// trigger check on the rollup tick. Dir is created lazily at first dump.
func NewFlightRecorder(cfg FlightConfig, rp *Rollup, engine *SLOEngine, traceFn func(w *bytes.Buffer) error) *FlightRecorder {
	cfg = cfg.withDefaults()
	fr := &FlightRecorder{
		cfg:        cfg,
		rollup:     rp,
		engine:     engine,
		traceFn:    traceFn,
		dumps:      rp.reg.Counter("flight.dumps"),
		suppressed: rp.reg.Counter("flight.suppressed"),
	}
	rp.reg.Describe("flight.dumps", "Incident files written by the flight recorder.")
	rp.reg.Describe("flight.suppressed", "Flight-recorder triggers suppressed by the dump rate limit.")
	rp.OnTick(fr.check)
	return fr
}

// check evaluates every trigger against the just-closed window and dumps
// once with all firing reasons joined.
func (fr *FlightRecorder) check(w Window) {
	var reasons []string
	if fr.engine != nil && fr.cfg.BurnThreshold > 0 {
		for _, st := range fr.engine.Evaluate() {
			if st.BurnRate5m >= fr.cfg.BurnThreshold {
				reasons = append(reasons, "burn-rate:"+st.Spec.Raw)
			}
		}
	}
	if fr.cfg.FiveXXBurst > 0 {
		var burst int64
		for name, d := range w.Counters {
			if strings.HasSuffix(name, ".status_5xx") {
				burst += d
			}
		}
		if burst >= fr.cfg.FiveXXBurst {
			reasons = append(reasons, fmt.Sprintf("5xx-burst:%d", burst))
		}
	}
	if fr.cfg.P99SpikeFactor > 0 {
		reasons = append(reasons, fr.p99Spikes(w)...)
	}
	if len(reasons) > 0 {
		_, _ = fr.Dump(strings.Join(reasons, "+"), false)
	}
}

// p99Spikes compares each watched latency histogram's windowed p99 to the
// mean p99 of its trailing baseline windows.
func (fr *FlightRecorder) p99Spikes(w Window) []string {
	var reasons []string
	// Baseline excludes the window under test: take the ring's tail
	// before it.
	ring := fr.rollup.Windows(fr.cfg.BaselineWindows + 1)
	var baseline []Window
	for _, bw := range ring {
		if bw.Seq < w.Seq {
			baseline = append(baseline, bw)
		}
	}
	for name, hs := range w.Hists {
		if !strings.Contains(name, "latency") || hs.Count < fr.cfg.MinWindowCount {
			continue
		}
		var sum int64
		var n int
		for _, bw := range baseline {
			if bh, ok := bw.Hists[name]; ok && bh.Count >= fr.cfg.MinWindowCount {
				sum += bh.P99
				n++
			}
		}
		if n < 3 {
			continue
		}
		base := sum / int64(n)
		if base > 0 && float64(hs.P99) >= fr.cfg.P99SpikeFactor*float64(base) {
			reasons = append(reasons, fmt.Sprintf("p99-spike:%s:%dus-vs-%dus", name, hs.P99, base))
		}
	}
	sort.Strings(reasons)
	return reasons
}

// Dump writes one incident file and returns its path. Trigger-initiated
// dumps (force=false) honor the rate limit; manual dumps (force=true, the
// POST /debug/flight/dump path) bypass it.
func (fr *FlightRecorder) Dump(reason string, force bool) (string, error) {
	now := time.Now()
	fr.mu.Lock()
	if !force && now.Sub(fr.last) < fr.cfg.MinInterval {
		fr.mu.Unlock()
		fr.suppressed.Add(1)
		return "", nil
	}
	fr.last = now
	fr.seq++
	seq := fr.seq
	fr.mu.Unlock()

	inc := Incident{
		Schema:  incidentSchema,
		Time:    now,
		Seq:     seq,
		Reason:  reason,
		Windows: fr.rollup.Windows(fr.cfg.DumpWindows),
		Runtime: ReadRuntimeStats(),
		Metrics: fr.rollup.reg.Snapshot(),
	}
	if fr.engine != nil {
		inc.SLO = fr.engine.Evaluate()
	}
	if fr.traceFn != nil {
		var buf bytes.Buffer
		if err := fr.traceFn(&buf); err == nil && json.Valid(buf.Bytes()) {
			inc.TraceEvents = json.RawMessage(buf.Bytes())
		}
	}

	if err := os.MkdirAll(fr.cfg.Dir, 0o755); err != nil {
		return "", err
	}
	// Atomic publication: write to a temp file in the same directory,
	// fsync-free rename — a reader never sees a partial incident.
	tmp, err := os.CreateTemp(fr.cfg.Dir, ".incident-*")
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", " ")
	if err := enc.Encode(inc); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	final := filepath.Join(fr.cfg.Dir,
		fmt.Sprintf("incident-%d-%03d-%s.json", now.Unix(), seq%1000, reasonSlug(reason)))
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	fr.dumps.Add(1)
	fr.mu.Lock()
	fr.lastReason = reason
	fr.lastFile = final
	fr.mu.Unlock()
	fr.prune()
	return final, nil
}

// reasonSlug renders a trigger reason into a safe filename fragment.
func reasonSlug(reason string) string {
	var sb strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
		if sb.Len() >= 48 {
			break
		}
	}
	if sb.Len() == 0 {
		return "manual"
	}
	return sb.String()
}

// prune removes the oldest incident files beyond MaxIncidents.
func (fr *FlightRecorder) prune() {
	matches, err := filepath.Glob(filepath.Join(fr.cfg.Dir, "incident-*.json"))
	if err != nil || len(matches) <= fr.cfg.MaxIncidents {
		return
	}
	sort.Strings(matches) // names sort by unix time then sequence
	for _, old := range matches[:len(matches)-fr.cfg.MaxIncidents] {
		_ = os.Remove(old)
	}
}

// flightView is the GET /debug/flight status document.
type flightView struct {
	Dir         string    `json:"dir"`
	Dumps       int64     `json:"dumps"`
	Suppressed  int64     `json:"suppressed"`
	LastTime    time.Time `json:"last_time,omitzero"`
	LastReason  string    `json:"last_reason,omitempty"`
	LastFile    string    `json:"last_file,omitempty"`
	MinInterval float64   `json:"min_interval_seconds"`
}

// StatusHandler serves the recorder's state — GET /debug/flight.
func (fr *FlightRecorder) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fr.mu.Lock()
		view := flightView{
			Dir:         fr.cfg.Dir,
			Dumps:       fr.dumps.Value(),
			Suppressed:  fr.suppressed.Value(),
			LastTime:    fr.last,
			LastReason:  fr.lastReason,
			LastFile:    fr.lastFile,
			MinInterval: fr.cfg.MinInterval.Seconds(),
		}
		fr.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
}

// DumpHandler forces an incident dump — POST /debug/flight/dump.
func (fr *FlightRecorder) DumpHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		reason := r.URL.Query().Get("reason")
		if reason == "" {
			reason = "manual"
		}
		path, err := fr.Dump(reason, true)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"file\":%q}\n", path)
	})
}
