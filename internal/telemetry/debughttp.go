package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Shared debug/observability mux: every binary that exposes runtime
// introspection (cereszbench -debug-addr, cereszd) serves the same four
// endpoint families, so dashboards and smoke tests work unchanged across
// them:
//
//	/debug/pprof/*    net/http/pprof profiles
//	/debug/vars       expvar JSON (includes the registry snapshot)
//	/debug/telemetry  the registry snapshot as indented JSON
//	/debug/metrics    Prometheus/OpenMetrics text exposition

// publishOnce guards expvar.Publish, which panics on duplicate names —
// tests and multi-server processes may build several debug muxes over the
// same registry.
var (
	publishMu   sync.Mutex
	publishedBy = map[string]*Registry{}
)

// PublishExpvarOnce publishes the registry under name unless that name is
// already taken; republishing the same registry is a no-op, a different
// registry under the same name returns an error instead of panicking.
func (r *Registry) PublishExpvarOnce(name string) error {
	publishMu.Lock()
	defer publishMu.Unlock()
	if prev, ok := publishedBy[name]; ok {
		if prev == r {
			return nil
		}
		return fmt.Errorf("telemetry: expvar name %q already published by another registry", name)
	}
	r.PublishExpvar(name)
	publishedBy[name] = r
	return nil
}

// DebugMux returns a mux serving the standard debug endpoints for r. The
// registry is also published to expvar under expvarName (skipped when the
// name is already owned by another registry). Mount it on its own listener
// or merge selected routes into an application mux with Handle.
func DebugMux(r *Registry, expvarName string) *http.ServeMux {
	_ = r.PublishExpvarOnce(expvarName)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/telemetry", r.Handler())
	mux.Handle("/debug/metrics", r.MetricsHandler())
	return mux
}

// ServeDebug enables r and serves DebugMux(r, expvarName) on addr in a
// background goroutine, logging listen failures to errw (stderr in the
// CLIs). It returns immediately; the server runs for the process lifetime.
func ServeDebug(addr string, r *Registry, expvarName string, errw io.Writer) {
	r.SetEnabled(true)
	mux := DebugMux(r, expvarName)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(errw, "debug server:", err)
		}
	}()
	fmt.Fprintf(errw, "debug server on http://%s/debug/pprof/ (also /debug/vars, /debug/telemetry, /debug/metrics)\n", addr)
}
