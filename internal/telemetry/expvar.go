package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
)

// PublishExpvar exposes the registry as a single expvar variable named
// name (conventionally "ceresz"), so the standard /debug/vars endpoint
// carries the full snapshot. Publishing the same name twice panics
// (expvar's semantics), so call once per process.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Handler returns an http.Handler serving the registry snapshot as
// indented JSON — the /debug/telemetry endpoint behind cereszbench's
// -debug-addr flag.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
