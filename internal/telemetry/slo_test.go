package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseSLOSpec(t *testing.T) {
	spec, err := ParseSLOSpec("compress:p99<25ms:99.9")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Subject != "compress" || spec.SLI != "p99" ||
		spec.Threshold != 25*time.Millisecond ||
		spec.Target < 0.999-1e-9 || spec.Target > 0.999+1e-9 {
		t.Fatalf("parsed %+v", spec)
	}

	spec, err = ParseSLOSpec("decompress:err:99.99")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Subject != "decompress" || spec.SLI != "err" || spec.Threshold != 0 ||
		spec.Target < 0.9999-1e-9 || spec.Target > 0.9999+1e-9 {
		t.Fatalf("parsed %+v", spec)
	}

	for _, bad := range []string{
		"",                        // empty
		"compress",                // no sli/target
		"compress:p99<25ms",       // no target
		":p99<25ms:99.9",          // empty subject
		"compress:p99:99.9",       // latency sli without threshold
		"compress:p<25ms:99.9",    // empty quantile
		"compress:pXX<25ms:99.9",  // non-numeric quantile
		"compress:p99<0s:99.9",    // non-positive threshold
		"compress:p99<zzz:99.9",   // unparsable duration
		"compress:latency:99.9",   // unknown sli
		"compress:err:0",          // target floor
		"compress:err:100",        // target ceiling
		"compress:err:nope",       // non-numeric target
		"compress:p99<25ms:99:9",  // too many fields
	} {
		if _, err := ParseSLOSpec(bad); err == nil {
			t.Errorf("ParseSLOSpec(%q) accepted, want error", bad)
		}
	}
}

func TestParseSLOSpecs(t *testing.T) {
	specs, err := ParseSLOSpecs(" compress:p99<25ms:99.9 , decompress:err:99 ,, ")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Subject != "compress" || specs[1].SLI != "err" {
		t.Fatalf("parsed %+v", specs)
	}
	if specs, err := ParseSLOSpecs(""); err != nil || len(specs) != 0 {
		t.Fatalf("empty spec list: %v %v", specs, err)
	}
	if _, err := ParseSLOSpecs("compress:p99<25ms:99.9,garbage"); err == nil {
		t.Fatal("bad list member accepted")
	}
}

func TestHistCountAtOrBelow(t *testing.T) {
	// Bucket upper 0 holds zeros; bucket upper 15 holds [8,15].
	buckets := map[int64]int64{0: 5, 15: 8}
	if got := histCountAtOrBelow(buckets, 0); got != 5 {
		t.Fatalf("<=0: %d, want 5", got)
	}
	if got := histCountAtOrBelow(buckets, 15); got != 13 {
		t.Fatalf("<=15: %d, want 13", got)
	}
	if got := histCountAtOrBelow(buckets, 7); got != 5 {
		t.Fatalf("<=7: %d, want 5 (below the [8,15] bucket)", got)
	}
	// Interpolation inside [8,15]: x=11 covers 4 of the 8 values.
	if got := histCountAtOrBelow(buckets, 11); got != 9 {
		t.Fatalf("<=11: %d, want 9", got)
	}
}

// sloFixture builds a registry + manually-ticked rollup with one latency
// histogram and a requests/5xx counter pair.
func sloFixture(t *testing.T) (*Registry, *Rollup, *SLOEngine) {
	t.Helper()
	r := NewRegistry()
	rp := NewRollup(r, RollupConfig{Interval: time.Hour, Windows: 64})
	objs := []Objective{
		{
			Spec:     mustSpec(t, "compress:p99<1ms:99"),
			HistName: "ep.latency_us",
		},
		{
			Spec:         mustSpec(t, "compress:err:99"),
			TotalCounter: "ep.requests",
			BadCounter:   "ep.status_5xx",
		},
	}
	e := NewSLOEngine(rp, objs, 0)
	return r, rp, e
}

func mustSpec(t *testing.T, raw string) SLOSpec {
	t.Helper()
	spec, err := ParseSLOSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSLOEvaluateHealthy(t *testing.T) {
	r, rp, e := sloFixture(t)
	for i := 0; i < 100; i++ {
		r.Histogram("ep.latency_us").Observe(100) // 100µs << 1ms
	}
	r.Counter("ep.requests").Add(100)
	rp.Tick()

	statuses := e.Evaluate()
	if len(statuses) != 2 {
		t.Fatalf("%d statuses", len(statuses))
	}
	for _, st := range statuses {
		if st.Compliance < 0.99 || st.Degraded || st.BurnRate5m > 1 {
			t.Fatalf("healthy objective reports %+v", st)
		}
		if st.BudgetRemaining < 0 {
			t.Fatalf("budget overspent while healthy: %+v", st)
		}
	}
	if _, degraded := e.Degraded(); degraded {
		t.Fatal("engine degraded while healthy")
	}
}

func TestSLOEvaluateBurning(t *testing.T) {
	r, rp, e := sloFixture(t)
	// Every request violates the 1ms threshold, and every request 5xxes:
	// bad fraction 1.0, budget 1%, burn = 100.
	for i := 0; i < 100; i++ {
		r.Histogram("ep.latency_us").Observe(50_000) // 50ms
	}
	r.Counter("ep.requests").Add(100)
	r.Counter("ep.status_5xx").Add(100)
	rp.Tick()

	statuses, degraded := e.Degraded()
	if !degraded {
		t.Fatal("engine not degraded under total burn")
	}
	for _, st := range statuses {
		if st.BurnRate5m < 50 {
			t.Fatalf("burn rate %g, want ~100: %+v", st.BurnRate5m, st)
		}
		if !st.Degraded {
			t.Fatalf("objective not degraded: %+v", st)
		}
		if st.BudgetRemaining >= 0 {
			t.Fatalf("budget not overspent: %+v", st)
		}
	}
}

func TestBurnRateMath(t *testing.T) {
	// 1% bad with a 1% budget burns at exactly 1.
	if br := burnRate(99, 100, 0.01); br < 0.999 || br > 1.001 {
		t.Fatalf("burnRate(99,100,1%%) = %g, want 1", br)
	}
	if br := burnRate(0, 0, 0.01); br != 0 {
		t.Fatalf("no traffic burn = %g, want 0", br)
	}
	if br := burnRate(100, 100, 0.01); br != 0 {
		t.Fatalf("perfect burn = %g, want 0", br)
	}
}

func TestSLOHandlerAndOpenMetrics(t *testing.T) {
	r, rp, e := sloFixture(t)
	r.Histogram("ep.latency_us").Observe(50_000)
	for i := 0; i < 9; i++ {
		r.Histogram("ep.latency_us").Observe(10)
	}
	r.Counter("ep.requests").Add(10)
	rp.Tick()

	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		DegradedBurn float64     `json:"degraded_burn_threshold"`
		Degraded     bool        `json:"degraded"`
		Objectives   []SLOStatus `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.DegradedBurn != DefaultDegradedBurn || len(view.Objectives) != 2 {
		t.Fatalf("view %+v", view)
	}

	var sb strings.Builder
	if _, err := e.writeOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE ceresz_slo_compliance gauge",
		`ceresz_slo_burn_rate_5m{slo="compress:p99<1ms:99"}`,
		`ceresz_slo_degraded{slo="compress:err:99"} 0`,
		"ceresz_slo_budget_remaining",
		"ceresz_slo_burn_rate_1h",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("slo exposition missing %q\n%s", want, body)
		}
	}
}
