package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Declarative service-level objectives evaluated over the rollup ring.
// An objective is written the way an on-call would say it —
//
//	compress:p99<25ms:99.9   "99.9% of compress requests finish in 25ms"
//	decompress:err:99.99     "99.99% of decompress requests don't 5xx"
//
// — and evaluated request-based (the SRE-workbook formulation): each
// rollup window contributes good/total event counts, and the engine
// reports compliance, error-budget remaining over the ring horizon, and
// multi-window burn rates (5m and 1h) — burn rate 1.0 spends exactly the
// budget, anything sustained above it breaches the objective before the
// horizon ends. The quantile token (p99) names the latency SLI for
// display; the math is the fraction of requests at or under the
// threshold, counted from windowed histogram bucket deltas.

// SLOSpec is one parsed objective.
type SLOSpec struct {
	// Raw is the original spec string, echoed in every surface.
	Raw string `json:"spec"`
	// Subject is the objective's target, e.g. an endpoint name.
	Subject string `json:"subject"`
	// SLI is "p<q>" for latency objectives or "err" for error-rate ones.
	SLI string `json:"sli"`
	// Threshold is the latency cut-off for latency SLIs (0 for err).
	Threshold time.Duration `json:"threshold_ns"`
	// Target is the good-event fraction, e.g. 0.999.
	Target float64 `json:"target"`
}

// ParseSLOSpec parses "subject:p99<25ms:99.9" or "subject:err:99.9".
func ParseSLOSpec(raw string) (SLOSpec, error) {
	spec := SLOSpec{Raw: raw}
	parts := strings.Split(raw, ":")
	if len(parts) != 3 {
		return spec, fmt.Errorf("slo %q: want subject:sli:target (e.g. compress:p99<25ms:99.9)", raw)
	}
	spec.Subject = parts[0]
	if spec.Subject == "" {
		return spec, fmt.Errorf("slo %q: empty subject", raw)
	}
	sli := parts[1]
	switch {
	case sli == "err":
		spec.SLI = "err"
	case strings.HasPrefix(sli, "p"):
		lt := strings.IndexByte(sli, '<')
		if lt < 2 {
			return spec, fmt.Errorf("slo %q: latency sli must be p<q><<duration>, e.g. p99<25ms", raw)
		}
		if _, err := strconv.ParseFloat(sli[1:lt], 64); err != nil {
			return spec, fmt.Errorf("slo %q: bad quantile %q", raw, sli[1:lt])
		}
		d, err := time.ParseDuration(sli[lt+1:])
		if err != nil || d <= 0 {
			return spec, fmt.Errorf("slo %q: bad latency threshold %q", raw, sli[lt+1:])
		}
		spec.SLI = sli[:lt]
		spec.Threshold = d
	default:
		return spec, fmt.Errorf("slo %q: sli must be p<q><<duration> or err, got %q", raw, sli)
	}
	target, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || target <= 0 || target >= 100 {
		return spec, fmt.Errorf("slo %q: target must be a percentage in (0,100), got %q", raw, parts[2])
	}
	spec.Target = target / 100
	return spec, nil
}

// ParseSLOSpecs parses a comma-separated spec list (the flag form).
func ParseSLOSpecs(raw string) ([]SLOSpec, error) {
	var out []SLOSpec
	for _, one := range strings.Split(raw, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		spec, err := ParseSLOSpec(one)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// Objective binds a spec to the registry instruments that carry its
// events. Latency SLIs read HistName (a histogram of microsecond
// latencies); error SLIs read the TotalCounter/BadCounter pair.
type Objective struct {
	Spec SLOSpec `json:"spec"`
	// HistName is the latency histogram (values in µs) for latency SLIs.
	HistName string `json:"hist,omitempty"`
	// TotalCounter / BadCounter are the event counters for err SLIs.
	TotalCounter string `json:"total_counter,omitempty"`
	BadCounter   string `json:"bad_counter,omitempty"`
}

// goodTotal extracts the objective's good/total event counts from one
// window.
func (o Objective) goodTotal(w Window) (good, total int64) {
	if o.Spec.SLI == "err" {
		total = w.Counters[o.TotalCounter]
		bad := w.Counters[o.BadCounter]
		if bad > total {
			bad = total
		}
		return total - bad, total
	}
	hs := w.Hists[o.HistName]
	return histCountAtOrBelow(hs.Buckets, o.Spec.Threshold.Microseconds()), hs.Count
}

// histCountAtOrBelow estimates how many observations of a windowed
// histogram were <= x, interpolating linearly inside the power-of-two
// bucket x falls in. Buckets maps each bucket's inclusive upper bound to
// its count (HistStats.Buckets).
func histCountAtOrBelow(buckets map[int64]int64, x int64) int64 {
	var n int64
	for upper, count := range buckets {
		lo := int64(0)
		if upper > 0 {
			lo = upper/2 + 1
		}
		switch {
		case upper <= x:
			n += count
		case lo <= x:
			span := upper - lo + 1
			n += count * (x - lo + 1) / span
		}
	}
	return n
}

// SLOStatus is one objective's evaluation over the rollup ring.
type SLOStatus struct {
	Spec SLOSpec `json:"spec"`
	// HorizonSeconds is the wall time the full-budget numbers cover —
	// the ring's span, bounded by process lifetime.
	HorizonSeconds float64 `json:"horizon_seconds"`
	Good           int64   `json:"good"`
	Total          int64   `json:"total"`
	// Compliance is good/total over the horizon (1 with no traffic).
	Compliance float64 `json:"compliance"`
	// BudgetRemaining is the error budget left over the horizon: 1 means
	// untouched, 0 exactly spent, negative overspent.
	BudgetRemaining float64 `json:"budget_remaining"`
	// BurnRate5m / BurnRate1h are the multi-window burn rates: the bad
	// fraction over the trailing window divided by the budget fraction
	// (1 - target). 1.0 burns exactly the budget.
	BurnRate5m float64 `json:"burn_rate_5m"`
	BurnRate1h float64 `json:"burn_rate_1h"`
	// Degraded reports the fast burn rate at or over the engine's
	// degraded threshold — the readiness probe's "degraded" detail.
	Degraded bool `json:"degraded"`
}

// DefaultDegradedBurn is the 5m burn rate at which an objective reports
// degraded: 2× means the budget would be gone in half the horizon.
const DefaultDegradedBurn = 2.0

// SLOEngine evaluates objectives over a rollup's ring.
type SLOEngine struct {
	rollup       *Rollup
	objs         []Objective
	degradedBurn float64
}

// NewSLOEngine attaches an engine to the rollup's registry (so
// MetricsHandler appends ceresz_slo_* gauges). degradedBurn <= 0 uses
// DefaultDegradedBurn.
func NewSLOEngine(rp *Rollup, objs []Objective, degradedBurn float64) *SLOEngine {
	if degradedBurn <= 0 {
		degradedBurn = DefaultDegradedBurn
	}
	e := &SLOEngine{rollup: rp, objs: objs, degradedBurn: degradedBurn}
	rp.reg.slo.Store(e)
	return e
}

// Objectives returns the engine's bound objectives.
func (e *SLOEngine) Objectives() []Objective { return e.objs }

// Evaluate computes every objective's status from the current ring. Time
// is ring-relative (the newest window's end), so manually-ticked rollups
// evaluate deterministically.
func (e *SLOEngine) Evaluate() []SLOStatus {
	windows := e.rollup.Windows(0)
	out := make([]SLOStatus, len(e.objs))
	var now time.Time
	if len(windows) > 0 {
		now = windows[len(windows)-1].End
	}
	for i, o := range e.objs {
		st := SLOStatus{Spec: o.Spec, Compliance: 1, BudgetRemaining: 1}
		var good5, total5, good60, total60 int64
		for _, w := range windows {
			g, t := o.goodTotal(w)
			st.Good += g
			st.Total += t
			if now.Sub(w.End) < 5*time.Minute {
				good5 += g
				total5 += t
			}
			if now.Sub(w.End) < time.Hour {
				good60 += g
				total60 += t
			}
		}
		if len(windows) > 0 {
			st.HorizonSeconds = now.Sub(windows[0].Start).Seconds()
		}
		budget := 1 - o.Spec.Target
		if st.Total > 0 {
			st.Compliance = float64(st.Good) / float64(st.Total)
			st.BudgetRemaining = 1 - (1-st.Compliance)/budget
		}
		st.BurnRate5m = burnRate(good5, total5, budget)
		st.BurnRate1h = burnRate(good60, total60, budget)
		st.Degraded = st.BurnRate5m >= e.degradedBurn
		out[i] = st
	}
	return out
}

// burnRate is badFraction / budgetFraction; 0 with no traffic.
func burnRate(good, total int64, budget float64) float64 {
	if total <= 0 {
		return 0
	}
	return (float64(total-good) / float64(total)) / budget
}

// Degraded reports whether any objective is currently burning fast.
func (e *SLOEngine) Degraded() ([]SLOStatus, bool) {
	statuses := e.Evaluate()
	for _, st := range statuses {
		if st.Degraded {
			return statuses, true
		}
	}
	return statuses, false
}

// sloView is the /debug/slo response document.
type sloView struct {
	DegradedBurn float64     `json:"degraded_burn_threshold"`
	Degraded     bool        `json:"degraded"`
	Objectives   []SLOStatus `json:"objectives"`
}

// Handler serves the engine's evaluation as JSON — /debug/slo.
func (e *SLOEngine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		statuses, degraded := e.Degraded()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sloView{DegradedBurn: e.degradedBurn, Degraded: degraded, Objectives: statuses})
	})
}

// labelEscape escapes a Prometheus label value.
func labelEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// writeOpenMetrics appends the ceresz_slo_* gauge families, one sample
// per objective labeled with its raw spec.
func (e *SLOEngine) writeOpenMetrics(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	statuses := e.Evaluate()
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].Spec.Raw < statuses[j].Spec.Raw })
	families := [...]struct {
		name string
		help string
		val  func(SLOStatus) float64
	}{
		{"ceresz_slo_compliance", "Good-event fraction over the rollup horizon.", func(s SLOStatus) float64 { return s.Compliance }},
		{"ceresz_slo_budget_remaining", "Error budget remaining over the rollup horizon (1 = untouched, <0 = overspent).", func(s SLOStatus) float64 { return s.BudgetRemaining }},
		{"ceresz_slo_burn_rate_5m", "Error-budget burn rate over the trailing 5 minutes (1.0 = exactly on budget).", func(s SLOStatus) float64 { return s.BurnRate5m }},
		{"ceresz_slo_burn_rate_1h", "Error-budget burn rate over the trailing hour.", func(s SLOStatus) float64 { return s.BurnRate1h }},
		{"ceresz_slo_degraded", "1 when the objective's 5m burn rate is at or over the degraded threshold.", func(s SLOStatus) float64 {
			if s.Degraded {
				return 1
			}
			return 0
		}},
	}
	for _, f := range families {
		if err := emit("# HELP %s %s\n# TYPE %s gauge\n", f.name, f.help, f.name); err != nil {
			return total, err
		}
		for _, st := range statuses {
			if err := emit("%s{slo=\"%s\"} %g\n", f.name, labelEscape(st.Spec.Raw), f.val(st)); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}
