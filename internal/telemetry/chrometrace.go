package telemetry

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export, shared by every span producer in the repo.
// The simulator's Tracer/SpanLog (internal/wse) and the serving path's
// request spans (internal/server) both render through this writer, so a
// simulator run and a cereszd capture open in the same viewer
// (ui.perfetto.dev or chrome://tracing) with the same conventions:
// complete slices use ph "X", per-track metadata ph "M", and flow arrows
// ph "s"/"t"/"f" bound by ID.

// ChromeEvent is one entry of the Chrome trace-event JSON array format.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    string         `json:"id,omitempty"` // flow-event binding id (ph "s"/"t"/"f")
	BP    string         `json:"bp,omitempty"` // flow binding point ("e" on the finish event)
	Cname string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ThreadName returns the ph "M" metadata event naming track tid.
func ThreadName(pid, tid int, name string) ChromeEvent {
	return ChromeEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

// ChromeTraceWriter streams a Chrome trace-event JSON array. Create with
// NewChromeTraceWriter, Emit events, then Close to terminate the array.
// Write errors are folded: Emit becomes a no-op after the first failure
// and Close reports it, so call sites stay linear.
type ChromeTraceWriter struct {
	w     io.Writer
	err   error
	first bool
}

// NewChromeTraceWriter opens the JSON array on w.
func NewChromeTraceWriter(w io.Writer) *ChromeTraceWriter {
	tw := &ChromeTraceWriter{w: w, first: true}
	tw.writeString("[\n")
	return tw
}

// Emit appends one event to the array.
func (tw *ChromeTraceWriter) Emit(ev ChromeEvent) {
	if tw.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		tw.err = err
		return
	}
	if !tw.first {
		tw.writeString(",\n")
	}
	tw.first = false
	tw.write(b)
}

// Close terminates the array and returns the first error encountered.
func (tw *ChromeTraceWriter) Close() error {
	tw.writeString("\n]\n")
	return tw.err
}

func (tw *ChromeTraceWriter) write(b []byte) {
	if tw.err != nil {
		return
	}
	_, tw.err = tw.w.Write(b)
}

func (tw *ChromeTraceWriter) writeString(s string) { tw.write([]byte(s)) }
