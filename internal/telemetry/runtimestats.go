package telemetry

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// Go runtime health, read through runtime/metrics and surfaced two ways:
// as registry gauges (so /debug/metrics and the rollup windows carry heap
// size, GC pauses, goroutine count and scheduler latency next to the
// serving metrics) and as a RuntimeStats document the flight recorder
// embeds verbatim in incident dumps — an incident file must answer "was
// the runtime healthy?" without a second scrape.

// runtimeSamples is the fixed sample set read on every update. All names
// have existed since Go 1.17, so Read never returns KindBad for them.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RuntimeStats is one reading of the process's runtime health.
type RuntimeStats struct {
	GoVersion    string `json:"go_version"`
	Goroutines   int64  `json:"goroutines"`
	HeapBytes    int64  `json:"heap_bytes"`
	TotalBytes   int64  `json:"total_bytes"`
	GCCycles     int64  `json:"gc_cycles"`
	GCPauseP50Ns int64  `json:"gc_pause_p50_ns"`
	GCPauseP99Ns int64  `json:"gc_pause_p99_ns"`
	SchedLatP50Ns int64 `json:"sched_latency_p50_ns"`
	SchedLatP99Ns int64 `json:"sched_latency_p99_ns"`
}

// ReadRuntimeStats samples the runtime. The pause and scheduler-latency
// quantiles are over the process lifetime (runtime/metrics histograms are
// cumulative); the rollup layer windows the gauge forms instead.
func ReadRuntimeStats() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	st := RuntimeStats{GoVersion: runtime.Version()}
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			st.Goroutines = int64(s.Value.Uint64())
		case "/memory/classes/heap/objects:bytes":
			st.HeapBytes = int64(s.Value.Uint64())
		case "/memory/classes/total:bytes":
			st.TotalBytes = int64(s.Value.Uint64())
		case "/gc/cycles/total:gc-cycles":
			st.GCCycles = int64(s.Value.Uint64())
		case "/gc/pauses:seconds":
			st.GCPauseP50Ns = float64HistQuantileNs(s.Value.Float64Histogram(), 0.50)
			st.GCPauseP99Ns = float64HistQuantileNs(s.Value.Float64Histogram(), 0.99)
		case "/sched/latencies:seconds":
			st.SchedLatP50Ns = float64HistQuantileNs(s.Value.Float64Histogram(), 0.50)
			st.SchedLatP99Ns = float64HistQuantileNs(s.Value.Float64Histogram(), 0.99)
		}
	}
	return st
}

// float64HistQuantileNs estimates the q-quantile of a runtime/metrics
// histogram (bucket values in seconds) in nanoseconds, by the bucket
// holding the target rank.
func float64HistQuantileNs(h *metrics.Float64Histogram, q float64) int64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1]; report the upper
			// edge (conservative), clamping the open-ended tails.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, +1) {
				hi = h.Buckets[i]
			}
			if math.IsInf(hi, -1) || hi < 0 {
				hi = 0
			}
			return int64(hi * 1e9)
		}
	}
	return 0
}

// Runtime gauge names under the registry's namespace; Describe'd once in
// UpdateRuntimeGauges so the exposition carries HELP text for them.
var runtimeGaugeHelp = map[string]string{
	"runtime.goroutines":          "Live goroutine count (/sched/goroutines).",
	"runtime.heap_bytes":          "Bytes of live heap objects (/memory/classes/heap/objects).",
	"runtime.total_bytes":         "Total bytes of memory mapped by the Go runtime (/memory/classes/total).",
	"runtime.gc_cycles":           "Completed GC cycles since process start (/gc/cycles/total).",
	"runtime.gc_pause_p99_ns":     "p99 stop-the-world GC pause, process lifetime (/gc/pauses).",
	"runtime.sched_latency_p99_ns": "p99 goroutine scheduling latency, process lifetime (/sched/latencies).",
}

// UpdateRuntimeGauges refreshes the runtime.* gauges from runtime/metrics.
// Scrape-triggered (MetricsHandler) and rollup-tick-triggered, so both the
// cumulative exposition and the time-series windows see runtime health
// without a background poller of its own.
func (r *Registry) UpdateRuntimeGauges() {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	if _, ok := r.help["runtime.goroutines"]; !ok {
		for name, help := range runtimeGaugeHelp {
			r.help[name] = help
		}
	}
	r.mu.Unlock()
	st := ReadRuntimeStats()
	r.Gauge("runtime.goroutines").Set(st.Goroutines)
	r.Gauge("runtime.heap_bytes").Set(st.HeapBytes)
	r.Gauge("runtime.total_bytes").Set(st.TotalBytes)
	r.Gauge("runtime.gc_cycles").Set(st.GCCycles)
	r.Gauge("runtime.gc_pause_p99_ns").Set(st.GCPauseP99Ns)
	r.Gauge("runtime.sched_latency_p99_ns").Set(st.SchedLatP99Ns)
}
