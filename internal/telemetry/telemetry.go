// Package telemetry is the repo-wide instrumentation substrate: a
// near-zero-overhead registry of counters, gauges, timers and histograms
// plus a span API, shared by the host compressor (internal/core), the
// framed/bundled container layers, the mapping planner and the WSE
// simulator. It is the machine-readable counterpart of the paper's
// cycle-level accounting (§5.1.1 "hardware cycle counters at each PE"):
// every pipeline stage reports through it, so performance PRs can be
// diffed instead of eyeballed.
//
// Design constraints (mirroring what cuSZ's kernel profiling and SZ3's
// modular stage layer provide on their platforms):
//
//   - a disabled registry must cost one predictable branch per call site —
//     instruments stay compiled in, handing out no-ops is unnecessary;
//   - an enabled registry must be safe for concurrent writers (the host
//     compressor runs one goroutine per core) and cost only an atomic
//     add per event;
//   - snapshots are plain maps, so they serialize to JSON/expvar without
//     adapters.
//
// The package-level Default registry starts disabled; CLIs opt in with
// Enable (ceresz -stats, cereszbench -debug-addr). Simulator runs build
// their own private Registry so concurrent simulations never mix.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	on atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
	help     map[string]string

	// rollup / slo point at the windowed time-series layer attached to
	// this registry (nil until NewRollup / NewSLOEngine). MetricsHandler
	// appends their exposition after the base snapshot, so one scrape
	// carries cumulative series, windowed rates and SLO state together.
	rollup atomic.Pointer[Rollup]
	slo    atomic.Pointer[SLOEngine]
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
	r.on.Store(true)
	return r
}

// Default is the process-wide registry used by the host compression path.
// It starts disabled, so instrumented hot loops cost a single branch.
var Default = func() *Registry {
	r := NewRegistry()
	r.on.Store(false)
	return r
}()

// Enable turns the Default registry on (CLI -stats / -debug-addr paths).
func Enable() { Default.SetEnabled(true) }

// Disable turns the Default registry off.
func Disable() { Default.SetEnabled(false) }

// Enabled reports whether the Default registry is recording.
func Enabled() bool { return Default.Enabled() }

// SetEnabled flips recording. Instruments handed out earlier keep working;
// they consult this flag on every event.
func (r *Registry) SetEnabled(on bool) { r.on.Store(on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.on.Load() }

// Counter returns (registering if needed) the named monotonic counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{r: r}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{r: r}
		r.gauges[name] = g
	}
	return g
}

// Timer returns (registering if needed) the named duration recorder.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{r: r}
		t.minNs.Store(math.MaxInt64)
		r.timers[name] = t
	}
	return t
}

// Histogram returns (registering if needed) the named value histogram
// (power-of-two buckets; bucket i counts values with bit length i).
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{r: r}
		r.hists[name] = h
	}
	return h
}

// Describe attaches HELP text to the named instrument. The text rides
// registry snapshots into the Prometheus exposition as a `# HELP` line;
// instruments never described get a generated fallback there. Describing
// the same name again overwrites.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// C is shorthand for Default.Counter — the form instrumented packages use
// in package-level vars, so the map lookup happens once at init.
func C(name string) *Counter { return Default.Counter(name) }

// G is shorthand for Default.Gauge.
func G(name string) *Gauge { return Default.Gauge(name) }

// T is shorthand for Default.Timer.
func T(name string) *Timer { return Default.Timer(name) }

// H is shorthand for Default.Histogram.
func H(name string) *Histogram { return Default.Histogram(name) }

// Counter is a monotonically increasing event count. A nil Counter and a
// Counter of a disabled registry are both safe no-ops.
type Counter struct {
	r *Registry
	v atomic.Int64
}

// Add increments the counter by n when the registry is enabled.
func (c *Counter) Add(n int64) {
	if c == nil || !c.r.on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (worker occupancy, queue depth).
type Gauge struct {
	r   *Registry
	v   atomic.Int64
	max atomic.Int64
}

// Set stores the gauge's value when the registry is enabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.r.on.Load() {
		return
	}
	g.v.Store(v)
	updateMax(&g.max, v)
}

// Add moves the gauge by delta and tracks the high-water mark (call with
// +1/-1 around a worker's lifetime to expose occupancy).
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.r.on.Load() {
		return
	}
	updateMax(&g.max, g.v.Add(delta))
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark since creation.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

func updateMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Timer accumulates durations. Record either with Observe or with the
// span form:
//
//	defer reg.Timer("core.compress").Start().End()
type Timer struct {
	r     *Registry
	count atomic.Int64
	sumNs atomic.Int64
	minNs atomic.Int64
	maxNs atomic.Int64
}

// Span is an in-flight timed section. The zero Span (from a disabled
// registry) is a safe no-op.
type Span struct {
	t  *Timer
	t0 time.Time
}

// Start opens a span; it returns the zero Span when disabled, making the
// whole Start/End pair one branch plus one atomic load.
func (t *Timer) Start() Span {
	if t == nil || !t.r.on.Load() {
		return Span{}
	}
	return Span{t: t, t0: time.Now()}
}

// End closes the span, recording its wall-clock duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Observe(time.Since(s.t0))
}

// Observe records one duration when the registry is enabled.
func (t *Timer) Observe(d time.Duration) {
	if t == nil || !t.r.on.Load() {
		return
	}
	ns := d.Nanoseconds()
	t.count.Add(1)
	t.sumNs.Add(ns)
	updateMax(&t.maxNs, ns)
	for {
		cur := t.minNs.Load()
		if ns >= cur || t.minNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// TimerStats is a timer's aggregate at snapshot time.
type TimerStats struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MinNs int64 `json:"min_ns"`
	MaxNs int64 `json:"max_ns"`
}

// Mean returns the mean duration, or 0 with no observations.
func (s TimerStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// histBuckets is the bucket count: values are classified by bit length,
// so bucket i holds values in [2^(i-1), 2^i).
const histBuckets = 64

// Histogram counts values in power-of-two buckets — enough resolution to
// see the shape of chunk sizes and latencies without per-event cost.
type Histogram struct {
	r       *Registry
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one non-negative value when the registry is enabled.
func (h *Histogram) Observe(v int64) {
	if h == nil || !h.r.on.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bitLen64(v)].Add(1)
}

func bitLen64(v int64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	if n >= histBuckets {
		n = histBuckets - 1
	}
	return n
}

// HistStats is a histogram's aggregate at snapshot time. Buckets maps the
// inclusive upper bound of each non-empty power-of-two bucket to its count.
// P50/P95/P99 are approximate quantiles, linearly interpolated inside the
// power-of-two bucket that crosses each rank — accurate to well under one
// bucket width (a factor of 2), which is the histogram's resolution.
type HistStats struct {
	Count   int64           `json:"count"`
	Sum     int64           `json:"sum"`
	P50     int64           `json:"p50,omitempty"`
	P95     int64           `json:"p95,omitempty"`
	P99     int64           `json:"p99,omitempty"`
	Buckets map[int64]int64 `json:"buckets,omitempty"`
}

// bucketBounds returns the inclusive value range of histogram bucket i
// (values with bit length i): bucket 0 holds only 0, bucket i holds
// [2^(i-1), 2^i − 1].
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, math.MaxInt64
	}
	return lo, (int64(1) << i) - 1
}

// histQuantile estimates the q-quantile from the bucket counts by linear
// interpolation inside the bucket containing the target rank.
func histQuantile(counts *[histBuckets]int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range counts {
		c := float64(counts[i])
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / c
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}

// Snapshot is a point-in-time copy of every instrument, ready for JSON,
// expvar, or diffing across runs.
type Snapshot struct {
	Counters map[string]int64      `json:"counters,omitempty"`
	Gauges   map[string]int64      `json:"gauges,omitempty"`
	Timers   map[string]TimerStats `json:"timers,omitempty"`
	Hists    map[string]HistStats  `json:"histograms,omitempty"`
	// Help carries the Describe'd instrument documentation, keyed by the
	// original instrument name (not the sanitized metric name).
	Help map[string]string `json:"-"`
}

// Snapshot captures the registry's current state. Counters that never
// fired are included at zero, so diffs line up across runs.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Timers:   make(map[string]TimerStats, len(r.timers)),
		Hists:    make(map[string]HistStats, len(r.hists)),
		Help:     make(map[string]string, len(r.help)),
	}
	for name, h := range r.help {
		s.Help[name] = h
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
		s.Gauges[name+".max"] = g.Max()
	}
	for name, t := range r.timers {
		ts := TimerStats{
			Count: t.count.Load(),
			SumNs: t.sumNs.Load(),
			MinNs: t.minNs.Load(),
			MaxNs: t.maxNs.Load(),
		}
		if ts.Count == 0 {
			ts.MinNs = 0
		}
		s.Timers[name] = ts
	}
	for name, h := range r.hists {
		hs := HistStats{Count: h.count.Load(), Sum: h.sum.Load()}
		var counts [histBuckets]int64
		for i := range h.buckets {
			n := h.buckets[i].Load()
			counts[i] = n
			if n > 0 {
				if hs.Buckets == nil {
					hs.Buckets = map[int64]int64{}
				}
				_, upper := bucketBounds(i)
				hs.Buckets[upper] = n
			}
		}
		if hs.Count > 0 {
			hs.P50 = histQuantile(&counts, hs.Count, 0.50)
			hs.P95 = histQuantile(&counts, hs.Count, 0.95)
			hs.P99 = histQuantile(&counts, hs.Count, 0.99)
		}
		s.Hists[name] = hs
	}
	return s
}

// histRaw is one histogram's raw state — the bucket-resolution form the
// rollup layer diffs between ticks (Snapshot's bucket map collapses empty
// buckets, which is right for JSON but awkward for deltas).
type histRaw struct {
	count   int64
	sum     int64
	buckets [histBuckets]int64
}

// rawState is a point-in-time copy of every instrument at full resolution.
// The rollup ticker keeps the previous state and diffs against the next.
type rawState struct {
	at       time.Time
	counters map[string]int64
	gauges   map[string]int64
	timers   map[string]TimerStats
	hists    map[string]histRaw
}

// rawSnapshot captures the registry at bucket resolution for windowing.
func (r *Registry) rawSnapshot(now time.Time) rawState {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := rawState{
		at:       now,
		counters: make(map[string]int64, len(r.counters)),
		gauges:   make(map[string]int64, len(r.gauges)),
		timers:   make(map[string]TimerStats, len(r.timers)),
		hists:    make(map[string]histRaw, len(r.hists)),
	}
	for name, c := range r.counters {
		s.counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		s.timers[name] = TimerStats{Count: t.count.Load(), SumNs: t.sumNs.Load()}
	}
	for name, h := range r.hists {
		var hr histRaw
		hr.count = h.count.Load()
		hr.sum = h.sum.Load()
		for i := range h.buckets {
			hr.buckets[i] = h.buckets[i].Load()
		}
		s.hists[name] = hr
	}
	return s
}

// WriteTo renders the snapshot as sorted human-readable lines — the
// `ceresz -stats` output format.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := emit("counter %-40s %d\n", name, s.Counters[name]); err != nil {
			return total, err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := emit("gauge   %-40s %d\n", name, s.Gauges[name]); err != nil {
			return total, err
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		t := s.Timers[name]
		if err := emit("timer   %-40s n=%d total=%v mean=%v min=%v max=%v\n",
			name, t.Count, time.Duration(t.SumNs), t.Mean(),
			time.Duration(t.MinNs), time.Duration(t.MaxNs)); err != nil {
			return total, err
		}
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		if err := emit("hist    %-40s n=%d sum=%d p50=%d p95=%d p99=%d\n",
			name, h.Count, h.Sum, h.P50, h.P95, h.P99); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the snapshot via WriteTo.
func (s Snapshot) String() string {
	var sb strings.Builder
	_, _ = s.WriteTo(&sb)
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
