package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/mapping"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// Fig13Point is one pipeline-length throughput measurement.
type Fig13Point struct {
	Dataset        string
	Direction      stages.Direction
	PipelineLen    int
	ThroughputGBps float64
}

// Fig13Result reproduces Fig. 13: compression throughput for pipelines of
// different lengths on QMCPack and Hurricane (error bound REL 1e-4 per the
// figure captions). The paper's claim (§4.4, §5.2): the single-PE pipeline
// is fastest and longer pipelines lose throughput overall — small interior
// bumps from imperfect greedy decomposition are expected ("the initial
// estimates … did not represent a perfectly uniform decomposition").
type Fig13Result struct {
	Points []Fig13Point
	// SinglePEFastest reports whether pipeline length 1 achieves the
	// maximum throughput for every dataset, with a declining overall trend
	// (the longest pipeline at least 15% below the single-PE one).
	SinglePEFastest bool
}

// Fig13 projects the pipeline-length sweep on the paper mesh, using the
// event-simulator-validated model, with the Alg. 1 grouping actually
// produced for each length.
func Fig13(cfg Config) (*Fig13Result, error) {
	cfg = cfg.WithDefaults()
	res := &Fig13Result{SinglePEFastest: true}
	for _, name := range []string{"QMCPack", "Hurricane"} {
		ds, err := datasets.ByName(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		data := ds.Fields[0].Data(cfg.Seed)
		minV, maxV := quant.Range(data)
		eps, err := quant.REL(1e-4).Resolve(minV, maxV)
		if err != nil {
			return nil, err
		}
		comp, stats, err := core.CompressWithEps(nil, data, eps, core.Options{})
		if err != nil {
			return nil, err
		}
		w, err := stages.EstimateWidth(data, eps, 32, 20)
		if err != nil {
			return nil, err
		}
		// Both directions: the paper notes the "phenomenon can also be
		// observed in decompression" (§5.2).
		for _, dir := range []stages.Direction{stages.Compress, stages.Decompress} {
			var first, last float64
			for _, pl := range []int{1, 2, 3, 4, 6, 8} {
				var chain *stages.Chain
				if dir == stages.Compress {
					chain, err = stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: int(w)})
				} else {
					chain, err = stages.NewDecompressChain(stages.Config{Eps: eps, EstWidth: int(w)})
				}
				if err != nil {
					return nil, err
				}
				plan, err := mapping.NewPlan(chain, mapping.PlanConfig{
					Mesh:        cfg.mesh(wse.Config{Rows: PaperMesh.Rows, Cols: PaperMesh.Cols}),
					PipelineLen: pl,
				})
				if err != nil {
					return nil, err
				}
				wl := mapping.Workload{
					Blocks:           stats.Blocks,
					Elements:         stats.Elements,
					WidthHist:        stats.WidthHistogram,
					VerbatimBlocks:   stats.VerbatimBlocks,
					AvgInputWavelets: 32,
				}
				if dir == stages.Decompress {
					wl.AvgInputWavelets = float64(len(comp)-core.StreamHeaderSize) / 4 / float64(stats.Blocks)
				}
				proj, err := plan.Project(wl)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, Fig13Point{
					Dataset:        name,
					Direction:      dir,
					PipelineLen:    pl,
					ThroughputGBps: proj.SteadyThroughputGBps,
				})
				if first == 0 {
					first = proj.SteadyThroughputGBps
				} else if proj.SteadyThroughputGBps >= first {
					res.SinglePEFastest = false
				}
				last = proj.SteadyThroughputGBps
			}
			if last > 0.85*first {
				res.SinglePEFastest = false
			}
		}
	}
	return res, nil
}

// PrintFig13 renders the pipeline-length sweep.
func PrintFig13(w io.Writer, r *Fig13Result) {
	section(w, "Fig. 13: compression throughput vs pipeline length (REL 1e-4, 512x512 PEs)")
	fmt.Fprintf(w, "%-10s %-12s %14s %18s\n", "Dataset", "direction", "pipeline len", "throughput GB/s")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10s %-12s %14d %18.2f\n", p.Dataset, p.Direction, p.PipelineLen, p.ThroughputGBps)
	}
	if r.SinglePEFastest {
		fmt.Fprintln(w, "single-PE pipeline fastest, longer pipelines slower: CONFIRMED (paper Fig. 13)")
	} else {
		fmt.Fprintln(w, "WARNING: single-PE pipeline is not the fastest configuration")
	}
}
