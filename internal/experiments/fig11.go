package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/baselines"
	"ceresz/internal/datasets"
	"ceresz/internal/flenc"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
)

// ThroughputCell is one (dataset, bound, compressor) throughput value.
type ThroughputCell struct {
	Dataset    string
	Rel        float64
	Compressor string
	GBps       float64
}

// ThroughputResult reproduces Fig. 11 (compression) or Fig. 12
// (decompression): throughput for CereSZ and the four baselines across the
// six datasets and three REL bounds. CereSZ numbers come from the WSE
// performance model at the paper's 512×512-PE, pipeline-length-1
// configuration; baseline numbers come from the device models driven by
// each baseline's measured ratio and zero-block fraction.
type ThroughputResult struct {
	Direction stages.Direction
	Cells     []ThroughputCell
	// CereSZAvg and CuSZpAvg are averages over all datasets and bounds —
	// the quantities behind the paper's "4.9× / 4.8× faster than cuSZp".
	CereSZAvg, CuSZpAvg float64
}

// PaperFig11 records the paper's headline compression numbers (§5.2).
var PaperFig11 = map[string]float64{
	"average":            457.35,
	"RTM REL 1e-2":       773.8,
	"Hurricane REL 1e-2": 378.21,
	"Hurricane REL 1e-3": 328.9,
	"RTM REL 1e-3":       654.63,
	"min REL 1e-4":       277.93,
}

// PaperFig12 records the decompression headline (§5.2).
var PaperFig12 = map[string]float64{
	"average":      581.31,
	"RTM REL 1e-2": 920.67,
}

// Throughput runs the Fig. 11 / Fig. 12 experiment.
func Throughput(cfg Config, dir stages.Direction) (*ThroughputResult, error) {
	cfg = cfg.WithDefaults()
	res := &ThroughputResult{Direction: dir}
	var cereszSum, cuszpSum float64
	var n int
	for _, ds := range datasets.All(cfg.Scale) {
		for _, rel := range RelBounds {
			// CereSZ on the paper mesh.
			runs, err := runFields(ds, rel, cfg, flenc.HeaderU32)
			if err != nil {
				return nil, err
			}
			ceresz, err := projectThroughput(runs, PaperMesh, dir)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, ThroughputCell{ds.Name, rel, "CereSZ", ceresz})
			cereszSum += ceresz

			// Baselines: ratio + zero fraction drive the device models.
			cells, err := baselineThroughputs(ds, rel, cfg, dir)
			if err != nil {
				return nil, err
			}
			for _, c := range cells {
				res.Cells = append(res.Cells, c)
				if c.Compressor == "cuSZp" {
					cuszpSum += c.GBps
				}
			}
			n++
		}
	}
	res.CereSZAvg = cereszSum / float64(n)
	res.CuSZpAvg = cuszpSum / float64(n)
	return res, nil
}

// baselineThroughputs evaluates the four baselines on one dataset/bound.
func baselineThroughputs(ds *datasets.Dataset, rel float64, cfg Config, dir stages.Direction) ([]ThroughputCell, error) {
	var out []ThroughputCell
	for _, c := range baselines.Suite() {
		comp, dec, err := baselines.Kernels(c.Name())
		if err != nil {
			return nil, err
		}
		kernel := comp
		if dir == stages.Decompress {
			kernel = dec
		}
		var totalOrig, totalComp float64
		var zeroSum float64
		fields := ds.Fields
		if cfg.MaxFieldsPerDataset > 0 && len(fields) > cfg.MaxFieldsPerDataset {
			fields = fields[:cfg.MaxFieldsPerDataset]
		}
		for i := range fields {
			f := &fields[i]
			data := f.Data(cfg.Seed)
			minV, maxV := quant.Range(data)
			eps, err := quant.REL(rel).Resolve(minV, maxV)
			if err != nil {
				return nil, err
			}
			cc, err := c.Compress(data, f.Dims, eps)
			if err != nil {
				return nil, fmt.Errorf("%s on %s/%s: %w", c.Name(), ds.Name, f.Name, err)
			}
			totalOrig += float64(4 * cc.Elements)
			totalComp += float64(len(cc.Bytes))
			zeroSum += cc.ZeroBlockFrac * float64(cc.Elements)
		}
		ratio := totalOrig / totalComp
		zeroFrac := zeroSum * 4 / totalOrig
		gbps, err := kernel.ThroughputGBps(ratio, zeroFrac)
		if err != nil {
			return nil, err
		}
		out = append(out, ThroughputCell{ds.Name, rel, c.Name(), gbps})
	}
	return out, nil
}

// PrintThroughput renders a Fig. 11/12-shaped table.
func PrintThroughput(w io.Writer, r *ThroughputResult) {
	if r.Direction == stages.Compress {
		section(w, "Fig. 11: compression throughput (GB/s), 512x512 PEs, pipeline length 1")
	} else {
		section(w, "Fig. 12: decompression throughput (GB/s), 512x512 PEs, pipeline length 1")
	}
	order := []string{"CereSZ", "cuSZp", "cuSZ", "SZp", "SZ"}
	fmt.Fprintf(w, "%-10s %-9s", "Dataset", "REL")
	for _, c := range order {
		fmt.Fprintf(w, " %9s", c)
	}
	fmt.Fprintln(w)
	byKey := map[string]float64{}
	for _, c := range r.Cells {
		byKey[fmt.Sprintf("%s|%g|%s", c.Dataset, c.Rel, c.Compressor)] = c.GBps
	}
	for _, ds := range datasets.Names() {
		for _, rel := range RelBounds {
			fmt.Fprintf(w, "%-10s %-9.0e", ds, rel)
			for _, c := range order {
				fmt.Fprintf(w, " %9.2f", byKey[fmt.Sprintf("%s|%g|%s", ds, rel, c)])
			}
			fmt.Fprintln(w)
		}
	}
	speedup := 0.0
	if r.CuSZpAvg > 0 {
		speedup = r.CereSZAvg / r.CuSZpAvg
	}
	paper := PaperFig11
	paperDir := "compression (paper: avg 457.35 GB/s, 4.9x over cuSZp)"
	if r.Direction == stages.Decompress {
		paper = PaperFig12
		paperDir = "decompression (paper: avg 581.31 GB/s, 4.8x over cuSZp)"
	}
	_ = paper
	fmt.Fprintf(w, "CereSZ average %.2f GB/s, cuSZp average %.2f GB/s -> speedup %.2fx; %s\n",
		r.CereSZAvg, r.CuSZpAvg, speedup, paperDir)
}
