package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/datasets"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
)

// StageProfileRow is one dataset's per-step cycle profile (Tables 1–3): the
// execution cycles of each (sub-)step for the block with the dataset's
// maximum fixed length, as the paper measures ("the maximum execution
// cycles across all data blocks within each dataset").
type StageProfileRow struct {
	Dataset  string
	MaxWidth uint

	// Table 1 columns.
	PreQuant, Lorenzo, FLEncode int64
	// Table 2 columns.
	Mul, Add int64
	// Table 3 columns.
	Sign, Max, GetLength, BitShuffle int64

	// Paper values for the corresponding columns (zero when the paper has
	// no row for this dataset).
	Paper StagePaperRow
}

// StagePaperRow carries the published Tables 1–3 numbers.
type StagePaperRow struct {
	PreQuant, Lorenzo, FLEncode      int64
	Mul, Add                         int64
	Sign, Max, GetLength, BitShuffle int64
	Width                            uint
}

// paperStageRows are the published profiles (Tables 1–3; widths from §4.2:
// encoding lengths 17, 13 and 12).
var paperStageRows = map[string]StagePaperRow{
	"CESM-ATM": {PreQuant: 6051, Lorenzo: 975, FLEncode: 37124, Mul: 5078, Add: 1033,
		Sign: 1044, Max: 1037, GetLength: 1386, BitShuffle: 33609, Width: 17},
	"HACC": {PreQuant: 6101, Lorenzo: 975, FLEncode: 29181, Mul: 5081, Add: 1038,
		Sign: 1041, Max: 1032, GetLength: 1370, BitShuffle: 25675, Width: 13},
	"QMCPack": {PreQuant: 6111, Lorenzo: 975, FLEncode: 27188, Mul: 5063, Add: 1049,
		Sign: 1048, Max: 1041, GetLength: 1385, BitShuffle: 23694, Width: 12},
}

// StageProfiles reproduces Tables 1–3: the per-step cycle costs for the
// three profiled datasets, using each dataset's measured maximum fixed
// length under a tight bound (the paper profiled the regime where CESM-ATM
// encodes 17 effective bits).
func StageProfiles(cfg Config) ([]StageProfileRow, error) {
	cfg = cfg.WithDefaults()
	cm := stages.DefaultCosts()
	var rows []StageProfileRow
	for _, name := range []string{"CESM-ATM", "HACC", "QMCPack"} {
		ds, err := datasets.ByName(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		// Measure the max fixed length across the dataset's first field at
		// the tight end of the evaluation bounds.
		f := &ds.Fields[0]
		data := f.Data(cfg.Seed)
		minV, maxV := quant.Range(data)
		eps, err := quant.REL(1e-4).Resolve(minV, maxV)
		if err != nil {
			return nil, err
		}
		w, err := stages.EstimateWidth(data, eps, 32, 1)
		if err != nil {
			return nil, err
		}
		row := StageProfileRow{
			Dataset:    name,
			MaxWidth:   w,
			Mul:        int64(cm.Mul),
			Add:        int64(cm.Add),
			Lorenzo:    int64(cm.Lorenzo),
			Sign:       int64(cm.Sign),
			Max:        int64(cm.Max),
			GetLength:  int64(cm.GetLength),
			BitShuffle: int64(float64(w) * cm.ShufflePerBit),
			Paper:      paperStageRows[name],
		}
		row.PreQuant = row.Mul + row.Add
		row.FLEncode = row.Sign + row.Max + row.GetLength + row.BitShuffle
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintStageProfiles renders Tables 1, 2 and 3.
func PrintStageProfiles(w io.Writer, rows []StageProfileRow) {
	section(w, "Table 1: execution cycles for the three steps (per 32-element block)")
	fmt.Fprintf(w, "%-10s %10s %12s %10s   %s\n", "Dataset", "Pre-Quant.", "Loren.Pred.", "FL Encd.", "(paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %12d %10d   (%d / %d / %d, fl=%d; measured fl=%d)\n",
			r.Dataset, r.PreQuant, r.Lorenzo, r.FLEncode,
			r.Paper.PreQuant, r.Paper.Lorenzo, r.Paper.FLEncode, r.Paper.Width, r.MaxWidth)
	}
	section(w, "Table 2: breakdown cycles for Pre-Quantization")
	fmt.Fprintf(w, "%-10s %10s %14s %10s   %s\n", "Dataset", "Pre-Quant.", "Multiplication", "Addition", "(paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %14d %10d   (%d / %d / %d)\n",
			r.Dataset, r.PreQuant, r.Mul, r.Add, r.Paper.PreQuant, r.Paper.Mul, r.Paper.Add)
	}
	section(w, "Table 3: breakdown cycles for Fixed-Length Encoding")
	fmt.Fprintf(w, "%-10s %9s %6s %6s %10s %12s   %s\n", "Dataset", "FL Encd.", "Sign", "Max", "GetLength", "Bit-shuffle", "(paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9d %6d %6d %10d %12d   (%d / %d / %d / %d / %d)\n",
			r.Dataset, r.FLEncode, r.Sign, r.Max, r.GetLength, r.BitShuffle,
			r.Paper.FLEncode, r.Paper.Sign, r.Paper.Max, r.Paper.GetLength, r.Paper.BitShuffle)
	}
}
