package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/baselines"
	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/metrics"
	"ceresz/internal/quant"
)

// Fig15Result reproduces the Fig. 15 data-quality comparison on the NYX
// velocity_x field at REL 1e-4: CereSZ and cuSZp share the identical
// reconstruction (same pre-quantization), hence identical PSNR and SSIM;
// only the ratios differ (paper: 3.10 vs 3.35, PSNR 84.77 dB, SSIM 0.9996).
type Fig15Result struct {
	CereSZRatio, CuSZpRatio float64
	PSNR, SSIM              float64
	MaxError, Eps           float64
	// Identical reports whether the two reconstructions match bit for bit.
	Identical bool
}

// Fig15 runs the quality experiment.
func Fig15(cfg Config) (*Fig15Result, error) {
	cfg = cfg.WithDefaults()
	ds, err := datasets.ByName("NYX", cfg.Scale)
	if err != nil {
		return nil, err
	}
	var field *datasets.Field
	for i := range ds.Fields {
		if ds.Fields[i].Name == "velocity_x" {
			field = &ds.Fields[i]
		}
	}
	if field == nil {
		return nil, fmt.Errorf("experiments: NYX has no velocity_x field")
	}
	data := field.Data(cfg.Seed)
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(1e-4).Resolve(minV, maxV)
	if err != nil {
		return nil, err
	}

	comp, stats, err := core.CompressWithEps(nil, data, eps, core.Options{})
	if err != nil {
		return nil, err
	}
	cereszRec, _, err := core.Decompress(nil, comp, 0)
	if err != nil {
		return nil, err
	}
	cz := baselines.CuSZp{}
	czComp, err := cz.Compress(data, field.Dims, eps)
	if err != nil {
		return nil, err
	}
	czRec, err := cz.Decompress(czComp)
	if err != nil {
		return nil, err
	}

	identical := len(cereszRec) == len(czRec)
	if identical {
		for i := range cereszRec {
			if cereszRec[i] != czRec[i] {
				identical = false
				break
			}
		}
	}
	rep, err := metrics.NewReport(data, cereszRec, len(comp), field.Dims)
	if err != nil {
		return nil, err
	}
	return &Fig15Result{
		CereSZRatio: stats.Ratio(),
		CuSZpRatio:  czComp.Ratio(),
		PSNR:        rep.PSNR,
		SSIM:        rep.SSIM,
		MaxError:    rep.MaxAbsErr,
		Eps:         eps,
		Identical:   identical,
	}, nil
}

// PrintFig15 renders the quality comparison.
func PrintFig15(w io.Writer, r *Fig15Result) {
	section(w, "Fig. 15: data quality on NYX velocity_x, REL 1e-4")
	fmt.Fprintf(w, "CereSZ ratio %.2f, cuSZp ratio %.2f (paper: 3.10 vs 3.35 — cuSZp higher by the 4-byte header penalty)\n",
		r.CereSZRatio, r.CuSZpRatio)
	fmt.Fprintf(w, "PSNR %.2f dB, SSIM %.6f (paper: 84.77 dB, 0.9996 — magnitudes depend on the data)\n", r.PSNR, r.SSIM)
	fmt.Fprintf(w, "max |error| %.3g within ε = %.3g\n", r.MaxError, r.Eps)
	if r.Identical {
		fmt.Fprintln(w, "CereSZ and cuSZp reconstructions are bit-identical: CONFIRMED (Observation 3)")
	} else {
		fmt.Fprintln(w, "WARNING: reconstructions differ")
	}
}
