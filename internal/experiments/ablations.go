package experiments

import (
	"fmt"
	"io"
	"time"

	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/flenc"
	"ceresz/internal/huffman"
	"ceresz/internal/lorenzo"
	"ceresz/internal/mapping"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// Ablations beyond the paper's figures: each isolates one design decision
// DESIGN.md calls out — the 32-element block (§5.1.1), the 4-byte header
// (§5.1.1 / Observation 2), fixed-length vs Huffman encoding (§3), and the
// zero-block fast path (§5.2).

// BlockSizeRow is one point of the block-length sweep.
type BlockSizeRow struct {
	BlockLen int
	AvgRatio float64
}

// BlockSizeAblation sweeps the block length over the Hurricane and NYX
// fields at REL 1e-3 and reports the average CereSZ ratio. The paper picks
// 32 as the ratio-optimal choice among WSE-compatible sizes; the sweep
// shows the trade it balances (smaller blocks amortize the 4-byte header
// worse; larger blocks capture fewer all-zero runs and take their fixed
// length from a wider window).
func BlockSizeAblation(cfg Config) ([]BlockSizeRow, error) {
	cfg = cfg.WithDefaults()
	var fields []fieldSpec
	for _, name := range []string{"Hurricane", "NYX"} {
		ds, err := datasets.ByName(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		n := len(ds.Fields)
		if cfg.MaxFieldsPerDataset > 0 && n > cfg.MaxFieldsPerDataset {
			n = cfg.MaxFieldsPerDataset
		}
		for i := 0; i < n; i++ {
			fields = append(fields, fieldSpec{ds: ds, idx: i})
		}
	}
	var rows []BlockSizeRow
	for _, L := range []int{8, 16, 32, 64, 128, 256} {
		var sum float64
		for _, fs := range fields {
			f := &fs.ds.Fields[fs.idx]
			data := f.Data(cfg.Seed)
			minV, maxV := quant.Range(data)
			eps, err := quant.REL(1e-3).Resolve(minV, maxV)
			if err != nil {
				return nil, err
			}
			_, stats, err := core.CompressWithEps(nil, data, eps, core.Options{BlockLen: L})
			if err != nil {
				return nil, err
			}
			sum += stats.Ratio()
		}
		rows = append(rows, BlockSizeRow{BlockLen: L, AvgRatio: sum / float64(len(fields))})
	}
	return rows, nil
}

type fieldSpec struct {
	ds  *datasets.Dataset
	idx int
}

// HeaderAblationRow compares the 4-byte and 1-byte header formats.
type HeaderAblationRow struct {
	Dataset  string
	Rel      float64
	RatioU32 float64 // CereSZ
	RatioU8  float64 // SZp format
	Penalty  float64 // RatioU8 / RatioU32
}

// HeaderAblation quantifies Observation 2: the 32-bit message-granularity
// header costs ratio, most at loose bounds (where zero blocks dominate and
// the header is the whole block) and least at tight bounds.
func HeaderAblation(cfg Config) ([]HeaderAblationRow, error) {
	cfg = cfg.WithDefaults()
	var rows []HeaderAblationRow
	for _, name := range []string{"NYX", "RTM"} {
		ds, err := datasets.ByName(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		for _, rel := range RelBounds {
			r32, err := runFields(ds, rel, cfg, flenc.HeaderU32)
			if err != nil {
				return nil, err
			}
			r8, err := runFields(ds, rel, cfg, flenc.HeaderU8)
			if err != nil {
				return nil, err
			}
			var s32, s8 float64
			for i := range r32 {
				s32 += r32[i].stats.Ratio()
				s8 += r8[i].stats.Ratio()
			}
			s32 /= float64(len(r32))
			s8 /= float64(len(r8))
			rows = append(rows, HeaderAblationRow{
				Dataset: name, Rel: rel,
				RatioU32: s32, RatioU8: s8, Penalty: s8 / s32,
			})
		}
	}
	return rows, nil
}

// EncodingAblationResult compares fixed-length encoding against Huffman
// coding of the same quantized Lorenzo residuals (the cuSZ route CereSZ
// §3 rejects for throughput reasons).
type EncodingAblationResult struct {
	Dataset          string
	FixedRatio       float64
	HuffmanRatio     float64
	FixedNsPerElem   float64
	HuffmanNsPerElem float64
}

// EncodingAblation measures both codecs on one CESM-like field at REL
// 1e-3: Huffman buys ratio (entropy-optimal code lengths, no per-block
// header) and pays heavily in encoder time (codebook construction and
// bit-serial emission are also the parts that resist the WSE's pipeline
// decomposition).
func EncodingAblation(cfg Config) (*EncodingAblationResult, error) {
	cfg = cfg.WithDefaults()
	ds, err := datasets.ByName("CESM-ATM", cfg.Scale)
	if err != nil {
		return nil, err
	}
	f := &ds.Fields[1]
	data := f.Data(cfg.Seed)
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(1e-3).Resolve(minV, maxV)
	if err != nil {
		return nil, err
	}

	// Fixed-length path (CereSZ).
	t0 := time.Now()
	_, stats, err := core.CompressWithEps(nil, data, eps, core.Options{Workers: 1})
	if err != nil {
		return nil, err
	}
	fixedNs := float64(time.Since(t0).Nanoseconds()) / float64(len(data))

	// Huffman path over the same codes: quantize, block-local Lorenzo,
	// global codebook (cuSZ-style bins with escapes).
	q, err := quant.NewQuantizer(eps)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	codes := make([]int32, len(data))
	if !q.Quantize(codes, data) {
		return nil, fmt.Errorf("experiments: field not quantizable")
	}
	for b := 0; b*32 < len(codes); b++ {
		lo := b * 32
		hi := min(lo+32, len(codes))
		lorenzo.Forward(codes[lo:hi], codes[lo:hi])
	}
	symbols := make([]uint32, len(codes))
	var outliers int
	for i, c := range codes {
		if c >= -512 && c < 512 {
			symbols[i] = uint32(c + 512)
		} else {
			symbols[i] = 1024
			outliers++
		}
	}
	cb, payload, err := huffman.EncodeAll(symbols)
	if err != nil {
		return nil, err
	}
	huffNs := float64(time.Since(t0).Nanoseconds()) / float64(len(data))
	huffBytes := len(payload) + 5*cb.Len() + 4*outliers + core.StreamHeaderSize

	return &EncodingAblationResult{
		Dataset:          ds.Name,
		FixedRatio:       stats.Ratio(),
		HuffmanRatio:     float64(4*len(data)) / float64(huffBytes),
		FixedNsPerElem:   fixedNs,
		HuffmanNsPerElem: huffNs,
	}, nil
}

// ZeroBlockAblationResult quantifies the §5.2 zero-block fast path.
type ZeroBlockAblationResult struct {
	Dataset              string
	Rel                  float64
	ZeroBlockFrac        float64
	WithGBps, SansGBps   float64 // modeled throughput with/without the fast path
	WithRatio, SansRatio float64
}

// ZeroBlockAblation disables the zero-block shortcut on RTM (the paper's
// most zero-heavy dataset): without it every zero block is encoded as a
// one-bit-plane block and pays the full Bit-shuffle step.
func ZeroBlockAblation(cfg Config) (*ZeroBlockAblationResult, error) {
	cfg = cfg.WithDefaults()
	ds, err := datasets.ByName("RTM", cfg.Scale)
	if err != nil {
		return nil, err
	}
	rel := 1e-2
	runs, err := runFields(ds, rel, cfg, flenc.HeaderU32)
	if err != nil {
		return nil, err
	}

	var zeroBlocks, blocks int
	var withBytes, sansBytes int64
	withW := mapping.Workload{AvgInputWavelets: 32}
	sansW := mapping.Workload{AvgInputWavelets: 32}
	var eps float64
	for _, r := range runs {
		zeroBlocks += r.stats.ZeroBlocks
		blocks += r.stats.Blocks
		withBytes += int64(r.stats.CompressedBytes)
		sansBytes += int64(r.stats.CompressedBytes)
		// Without the shortcut a zero block becomes a width-1 block:
		// +(signs + one plane) bytes and width-1 costs.
		sansBytes += int64(r.stats.ZeroBlocks * 2 * flenc.PlaneBytes(32))
		withW.Blocks += r.stats.Blocks
		withW.Elements += r.stats.Elements
		withW.VerbatimBlocks += r.stats.VerbatimBlocks
		sansW.Blocks += r.stats.Blocks
		sansW.Elements += r.stats.Elements
		sansW.VerbatimBlocks += r.stats.VerbatimBlocks
		for w, c := range r.stats.WidthHistogram {
			withW.WidthHist[w] += c
			if w == 0 {
				sansW.WidthHist[1] += c // pays one bit plane
			} else {
				sansW.WidthHist[w] += c
			}
		}
		eps = r.eps
	}
	chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: 8})
	if err != nil {
		return nil, err
	}
	plan, err := mapping.NewPlan(chain, mapping.PlanConfig{Mesh: cfg.mesh(PaperMesh), PipelineLen: 1})
	if err != nil {
		return nil, err
	}
	pWith, err := plan.Project(withW)
	if err != nil {
		return nil, err
	}
	pSans, err := plan.Project(sansW)
	if err != nil {
		return nil, err
	}
	origBytes := float64(4 * withW.Elements)
	return &ZeroBlockAblationResult{
		Dataset:       ds.Name,
		Rel:           rel,
		ZeroBlockFrac: float64(zeroBlocks) / float64(blocks),
		WithGBps:      pWith.SteadyThroughputGBps,
		SansGBps:      pSans.SteadyThroughputGBps,
		WithRatio:     origBytes / float64(withBytes),
		SansRatio:     origBytes / float64(sansBytes),
	}, nil
}

// TunerResult wraps the §4.4 pipeline-length selection demo.
type TunerResult struct {
	Unconstrained  int // fast feed, ample memory → 1 (the paper's result)
	SlowFeed       int // feed-bound: longer pipelines stop hurting
	TightMemoryErr error
	Points         []mapping.TuningPoint
}

// Tuner runs SelectPipelineLength under the three §4.4 regimes.
func Tuner(cfg Config) (*TunerResult, error) {
	cfg = cfg.WithDefaults()
	ds, err := datasets.ByName("QMCPack", cfg.Scale)
	if err != nil {
		return nil, err
	}
	data := ds.Fields[0].Data(cfg.Seed)
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(1e-3).Resolve(minV, maxV)
	if err != nil {
		return nil, err
	}
	stats, err := hostStats(data, eps)
	if err != nil {
		return nil, err
	}
	w := mapping.Workload{
		Blocks:           stats.Blocks,
		Elements:         stats.Elements,
		WidthHist:        stats.WidthHistogram,
		VerbatimBlocks:   stats.VerbatimBlocks,
		AvgInputWavelets: 32,
	}
	mesh := cfg.mesh(wse.Config{Rows: 64, Cols: 64})

	chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: 8})
	if err != nil {
		return nil, err
	}
	res := &TunerResult{}
	res.Unconstrained, res.Points, err = mapping.SelectPipelineLength(chain, mesh, w, mapping.TunerConstraints{})
	if err != nil {
		return nil, err
	}
	res.SlowFeed, _, err = mapping.SelectPipelineLength(chain, mesh, w, mapping.TunerConstraints{
		InputWaveletsPerCycle: 0.005, // a trickle: feed-bound regime
	})
	if err != nil {
		return nil, err
	}
	// Assumption 2: memory too small for any pipeline length.
	bigChain, err := stages.NewCompressChain(stages.Config{BlockLen: 8192, Eps: eps, EstWidth: 8})
	if err != nil {
		return nil, err
	}
	_, _, res.TightMemoryErr = mapping.SelectPipelineLength(bigChain, wse.Config{Rows: 1, Cols: 2, MemPerPE: 4096}, w, mapping.TunerConstraints{})
	return res, nil
}

// PrintAblations renders all ablations.
func PrintAblations(w io.Writer, blocks []BlockSizeRow, headers []HeaderAblationRow,
	enc *EncodingAblationResult, zero *ZeroBlockAblationResult, tuner *TunerResult) {
	section(w, "Ablation: block length (REL 1e-3, Hurricane + NYX; paper §5.1.1 picks 32)")
	fmt.Fprintf(w, "%10s %12s\n", "block len", "avg ratio")
	for _, r := range blocks {
		fmt.Fprintf(w, "%10d %12.2f\n", r.BlockLen, r.AvgRatio)
	}

	section(w, "Ablation: 4-byte vs 1-byte block headers (Observation 2)")
	fmt.Fprintf(w, "%-8s %-9s %10s %10s %10s\n", "Dataset", "REL", "u32", "u8", "penalty")
	for _, r := range headers {
		fmt.Fprintf(w, "%-8s %-9.0e %10.2f %10.2f %9.2fx\n", r.Dataset, r.Rel, r.RatioU32, r.RatioU8, r.Penalty)
	}

	section(w, "Ablation: fixed-length vs Huffman encoding (§3 design rationale)")
	fmt.Fprintf(w, "%s: fixed-length ratio %.2f at %.1f ns/elem; Huffman ratio %.2f at %.1f ns/elem (%.1fx slower to encode)\n",
		enc.Dataset, enc.FixedRatio, enc.FixedNsPerElem, enc.HuffmanRatio, enc.HuffmanNsPerElem,
		enc.HuffmanNsPerElem/enc.FixedNsPerElem)

	section(w, "Ablation: zero-block fast path (§5.2)")
	fmt.Fprintf(w, "%s REL %.0e: %.0f%% zero blocks; with fast path %.1f GB/s ratio %.2f; without %.1f GB/s ratio %.2f\n",
		zero.Dataset, zero.Rel, 100*zero.ZeroBlockFrac, zero.WithGBps, zero.WithRatio, zero.SansGBps, zero.SansRatio)

	section(w, "Pipeline-length tuner (§4.4)")
	fmt.Fprintf(w, "unconstrained: pipeline length %d (paper: 1); feed-bound: %d; tight memory: %v\n",
		tuner.Unconstrained, tuner.SlowFeed, tuner.TightMemoryErr)
	fmt.Fprintf(w, "%14s %16s %s\n", "pipeline len", "GB/s", "feasible")
	for _, p := range tuner.Points {
		fmt.Fprintf(w, "%14d %16.2f %v %s\n", p.PipelineLen, p.ThroughputGBps, p.Feasible, p.Reason)
	}
}
