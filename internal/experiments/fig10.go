package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/datasets"
	"ceresz/internal/mapping"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// Fig10aPoint is one point of the relay-time profile.
type Fig10aPoint struct {
	Cols                int
	RelayCyclesPerBlock float64
}

// Fig10bPoint is one point of the per-PE execution-time profile.
type Fig10bPoint struct {
	PipelineLen             int
	ExecCyclesPerPEPerBlock float64
}

// Fig10Result reproduces the §4.3 profiling on QMCPack: (a) the relay time
// on the west-most PE grows linearly with the number of columns (Formula
// (2)); (b) the per-PE execution time falls inversely with the pipeline
// length (Formula (3)).
type Fig10Result struct {
	A []Fig10aPoint
	B []Fig10bPoint
	// ALinearityErr is nil when (a) is linear within 15%.
	ALinearityErr error
}

// Fig10 runs both profiles in the event simulator.
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.WithDefaults()
	ds, err := datasets.ByName("QMCPack", cfg.Scale)
	if err != nil {
		return nil, err
	}
	data := ds.Fields[0].Data(cfg.Seed)
	if len(data) > 32*2048 {
		data = data[:32*2048]
	}
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(1e-3).Resolve(minV, maxV)
	if err != nil {
		return nil, err
	}

	res := &Fig10Result{}

	// (a) relay cycles per relayed block on PE(0,0), vs column count.
	var xs []int
	for _, cols := range []int{4, 8, 16, 32} {
		chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: 8})
		if err != nil {
			return nil, err
		}
		plan, err := mapping.NewPlan(chain, mapping.PlanConfig{
			Mesh:        cfg.mesh(wse.Config{Rows: 1, Cols: cols}),
			PipelineLen: 1,
		})
		if err != nil {
			return nil, err
		}
		r, err := plan.Compress(data)
		if err != nil {
			return nil, err
		}
		nBlocks := (len(data) + 31) / 32
		rounds := float64(nBlocks) / float64(cols)
		relay := float64(r.Mesh.PE(0, 0).Stats().RelayCycles) / rounds
		res.A = append(res.A, Fig10aPoint{Cols: cols, RelayCyclesPerBlock: relay})
		// Formula (2): per-round relay ∝ (cols−1).
		xs = append(xs, cols-1)
	}
	// Verify linear growth of per-round relay time in (cols−1).
	lin := make([]float64, len(xs))
	for i := range xs {
		lin[i] = res.A[i].RelayCyclesPerBlock / float64(xs[i])
	}
	res.ALinearityErr = nil
	for i := 1; i < len(lin); i++ {
		if diff := (lin[i] - lin[0]) / lin[0]; diff > 0.15 || diff < -0.15 {
			res.ALinearityErr = fmt.Errorf("relay per (cols-1) varies %.1f%% at %d cols", 100*diff, res.A[i].Cols)
			break
		}
	}

	// (b) per-PE execution time vs pipeline length on a fixed 1×12 strip.
	for _, pl := range []int{1, 2, 3, 4, 6} {
		chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: 8})
		if err != nil {
			return nil, err
		}
		plan, err := mapping.NewPlan(chain, mapping.PlanConfig{
			Mesh:        cfg.mesh(wse.Config{Rows: 1, Cols: 12}),
			PipelineLen: pl,
		})
		if err != nil {
			return nil, err
		}
		r, err := plan.Compress(data)
		if err != nil {
			return nil, err
		}
		// Average compute cycles per pipeline PE per processed block.
		pipelines := 12 / pl
		var compute int64
		for c := 0; c < pipelines*pl; c++ {
			compute += r.Mesh.PE(0, c).Stats().ComputeCycles
		}
		nBlocks := (len(data) + 31) / 32
		res.B = append(res.B, Fig10bPoint{
			PipelineLen:             pl,
			ExecCyclesPerPEPerBlock: float64(compute) / float64(pipelines*pl) / float64(nBlocks) * float64(pipelines),
		})
	}
	return res, nil
}

// PrintFig10 renders both profiles.
func PrintFig10(w io.Writer, r *Fig10Result) {
	section(w, "Fig. 10(a): relay cycles per round on PE(0,0) vs #columns (QMCPack)")
	fmt.Fprintf(w, "%6s %22s\n", "cols", "relay cycles/round")
	for _, p := range r.A {
		fmt.Fprintf(w, "%6d %22.1f\n", p.Cols, p.RelayCyclesPerBlock)
	}
	if r.ALinearityErr == nil {
		fmt.Fprintln(w, "linear in columns: CONFIRMED (Formula (2))")
	} else {
		fmt.Fprintf(w, "linear in columns: VIOLATED: %v\n", r.ALinearityErr)
	}
	section(w, "Fig. 10(b): per-PE execution cycles per block vs pipeline length (QMCPack)")
	fmt.Fprintf(w, "%14s %26s\n", "pipeline len", "exec cycles/PE/block")
	for _, p := range r.B {
		fmt.Fprintf(w, "%14d %26.1f\n", p.PipelineLen, p.ExecCyclesPerPEPerBlock)
	}
	fmt.Fprintln(w, "inverse proportionality with pipeline length: see Formula (3)")
}
