package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/datasets"
	"ceresz/internal/mapping"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// SimOccupancy is the simulator's aggregate cycle attribution for one
// run, shaped for machine diffing (cereszbench -json → benchdiff -oldjson).
// Cycle buckets are summed over active PEs; their per-PE sums partition
// [0, elapsed] exactly, so queue-wait/fabric-stall shifts between two
// builds are directly comparable.
type SimOccupancy struct {
	ElapsedCycles     int64   `json:"elapsed_cycles"`
	ActivePEs         int     `json:"active_pes"`
	ComputeCycles     int64   `json:"compute_cycles"`
	RelayFwdCycles    int64   `json:"relay_forward_cycles"`
	QueueWaitCycles   int64   `json:"queue_wait_cycles"`
	FabricStallCycles int64   `json:"fabric_stall_cycles"`
	IdleCycles        int64   `json:"idle_cycles"`
	MailboxWaitCycles int64   `json:"mailbox_wait_cycles"`
	OccupancyPct      float64 `json:"occupancy_pct"` // busy / (active_pes × elapsed)
	PoolPeakWorkers   int     `json:"pool_peak_workers"`
}

// simOccupancy derives the diffable aggregate from a finished run.
func simOccupancy(r *mapping.Result) SimOccupancy {
	att := r.Attribution
	t := att.Totals
	occ := 0.0
	if att.ActivePEs > 0 && att.Elapsed > 0 {
		occ = 100 * float64(t.Busy()) / float64(int64(att.ActivePEs)*att.Elapsed)
	}
	return SimOccupancy{
		ElapsedCycles:     att.Elapsed,
		ActivePEs:         att.ActivePEs,
		ComputeCycles:     t.Compute,
		RelayFwdCycles:    t.RelayForward,
		QueueWaitCycles:   t.QueueWait,
		FabricStallCycles: t.FabricStall,
		IdleCycles:        t.Idle,
		MailboxWaitCycles: t.MailboxWait,
		OccupancyPct:      occ,
		PoolPeakWorkers:   r.Mesh.PoolPeak(),
	}
}

// UtilizationRow is one configuration's PE-utilization summary.
type UtilizationRow struct {
	PipelineLen     int
	ProcessorRelay  bool
	Cycles          int64
	MeanUtilization float64
	BusiestPE       wse.Coord
	RelayShare      float64 // relay cycles / busy cycles, aggregate
	// Sim carries the stall-attribution aggregate for benchdiff.
	Sim SimOccupancy `json:"sim"`
}

// UtilizationResult addresses the paper's future-work question ("further
// improve the computation balance and bandwidth utilization of PEs") with
// measured per-PE utilization across pipeline lengths and the two relay
// modes, on an event-simulated 2×12 strip.
type UtilizationResult struct {
	Rows []UtilizationRow
}

// Utilization runs the sweep on a QMCPack sample.
func Utilization(cfg Config) (*UtilizationResult, error) {
	cfg = cfg.WithDefaults()
	ds, err := datasets.ByName("QMCPack", cfg.Scale)
	if err != nil {
		return nil, err
	}
	data := ds.Fields[0].Data(cfg.Seed)
	if len(data) > 32*1024 {
		data = data[:32*1024]
	}
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(1e-3).Resolve(minV, maxV)
	if err != nil {
		return nil, err
	}
	res := &UtilizationResult{}
	for _, procRelay := range []bool{true, false} {
		for _, pl := range []int{1, 2, 3, 4, 6} {
			chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: 8})
			if err != nil {
				return nil, err
			}
			plan, err := mapping.NewPlan(chain, mapping.PlanConfig{
				Mesh:           cfg.mesh(wse.Config{Rows: 2, Cols: 12}),
				PipelineLen:    pl,
				ProcessorRelay: procRelay,
			})
			if err != nil {
				return nil, err
			}
			r, err := plan.Compress(data)
			if err != nil {
				return nil, err
			}
			s := r.Mesh.Summary()
			relayShare := 0.0
			if busy := s.TotalCompute + s.TotalRelay + s.TotalSend; busy > 0 {
				relayShare = float64(s.TotalRelay) / float64(busy)
			}
			res.Rows = append(res.Rows, UtilizationRow{
				PipelineLen:     pl,
				ProcessorRelay:  procRelay,
				Cycles:          r.Cycles,
				MeanUtilization: s.MeanUtilization,
				BusiestPE:       s.BusiestPE,
				RelayShare:      relayShare,
				Sim:             simOccupancy(r),
			})
		}
	}
	return res, nil
}

// PrintUtilization renders the sweep.
func PrintUtilization(w io.Writer, r *UtilizationResult) {
	section(w, "PE utilization vs pipeline length (QMCPack, 2x12 mesh; paper future work)")
	fmt.Fprintf(w, "%14s %-16s %12s %12s %12s %11s %11s %s\n",
		"pipeline len", "relay mode", "cycles", "mean util", "relay share", "queue wait", "fab stall", "busiest")
	for _, row := range r.Rows {
		mode := "router"
		if row.ProcessorRelay {
			mode = "processor"
		}
		denom := float64(int64(row.Sim.ActivePEs) * row.Sim.ElapsedCycles)
		if denom == 0 {
			denom = 1
		}
		fmt.Fprintf(w, "%14d %-16s %12d %11.1f%% %11.1f%% %10.1f%% %10.1f%% %v\n",
			row.PipelineLen, mode, row.Cycles, 100*row.MeanUtilization, 100*row.RelayShare,
			100*float64(row.Sim.QueueWaitCycles)/denom, 100*float64(row.Sim.FabricStallCycles)/denom,
			row.BusiestPE)
	}
	fmt.Fprintln(w, "router relay removes interior-PE relay work; utilization spreads accordingly")
}
