package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/baselines"
	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/metrics"
	"ceresz/internal/quant"
)

// RateDistortionPoint is one (bit rate, PSNR) sample for one compressor.
type RateDistortionPoint struct {
	Compressor string
	Rel        float64
	BitRate    float64 // bits per element
	PSNR       float64 // dB
}

// RateDistortionResult reproduces the §5.4 rate-distortion discussion:
// CereSZ, cuSZp and SZ on one NYX field across five bounds. All
// pre-quantization compressors share the same PSNR at a given bound (the
// reconstruction is identical), so their curves differ only horizontally:
// CereSZ sits slightly right of cuSZp (the 4-byte header), and SZ sits far
// left (Huffman + lossless back end).
type RateDistortionResult struct {
	Dataset string
	Field   string
	Points  []RateDistortionPoint
}

// RateDistortion runs the sweep.
func RateDistortion(cfg Config) (*RateDistortionResult, error) {
	cfg = cfg.WithDefaults()
	ds, err := datasets.ByName("NYX", cfg.Scale)
	if err != nil {
		return nil, err
	}
	f := &ds.Fields[3] // velocity_x
	data := f.Data(cfg.Seed)
	minV, maxV := quant.Range(data)

	res := &RateDistortionResult{Dataset: ds.Name, Field: f.Name}
	for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5} {
		eps, err := quant.REL(rel).Resolve(minV, maxV)
		if err != nil {
			return nil, err
		}
		// CereSZ.
		comp, _, err := core.CompressWithEps(nil, data, eps, core.Options{})
		if err != nil {
			return nil, err
		}
		rec, _, err := core.Decompress(nil, comp, 0)
		if err != nil {
			return nil, err
		}
		psnr, err := metrics.PSNR(data, rec)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, RateDistortionPoint{
			Compressor: "CereSZ", Rel: rel,
			BitRate: metrics.BitRate(len(data), len(comp)), PSNR: psnr,
		})
		// cuSZp (same reconstruction, 1-byte headers).
		czp, err := (baselines.CuSZp{}).Compress(data, f.Dims, eps)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, RateDistortionPoint{
			Compressor: "cuSZp", Rel: rel,
			BitRate: metrics.BitRate(len(data), len(czp.Bytes)), PSNR: psnr,
		})
		// SZ.
		sz, err := (baselines.SZ3{}).Compress(data, f.Dims, eps)
		if err != nil {
			return nil, err
		}
		szRec, err := (baselines.SZ3{}).Decompress(sz)
		if err != nil {
			return nil, err
		}
		szPSNR, err := metrics.PSNR(data, szRec)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, RateDistortionPoint{
			Compressor: "SZ", Rel: rel,
			BitRate: metrics.BitRate(len(data), len(sz.Bytes)), PSNR: szPSNR,
		})
	}
	return res, nil
}

// PrintRateDistortion renders the curve samples.
func PrintRateDistortion(w io.Writer, r *RateDistortionResult) {
	section(w, fmt.Sprintf("Rate-distortion (§5.4) on %s/%s", r.Dataset, r.Field))
	fmt.Fprintf(w, "%-8s %-9s %12s %10s\n", "codec", "REL", "bits/elem", "PSNR dB")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-8s %-9.0e %12.3f %10.2f\n", p.Compressor, p.Rel, p.BitRate, p.PSNR)
	}
	fmt.Fprintln(w, "CereSZ's curve sits slightly right of cuSZp (4-byte headers) at identical PSNR; SZ sits far left (Observation 3).")
}
