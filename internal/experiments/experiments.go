// Package experiments regenerates every table and figure of the paper's
// evaluation (§4–§5) on the simulated substrate. Each experiment returns a
// structured result with the paper's reported values attached, and knows
// how to render itself as text; cmd/cereszbench and the repository-root
// benchmarks are thin wrappers around this package.
//
// Absolute CereSZ numbers come from the calibrated WSE cost model (event
// simulation for small meshes, the validated analytic model of Formulas
// (2)–(4) for full-wafer geometries); baseline throughputs come from
// internal/devmodel; ratios and reconstructions come from actually running
// all compressors on the synthetic datasets. See DESIGN.md §2 for the
// substitution rationale and EXPERIMENTS.md for recorded paper-vs-measured
// outcomes.
package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/mapping"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// Config selects the workload scale and determinism seed shared by all
// experiments.
type Config struct {
	// Scale selects dataset sizes (datasets.Small is the default; Medium
	// matches the harness's published numbers more closely, Full is heavy).
	Scale datasets.Scale
	// Seed drives every generator.
	Seed int64
	// MaxFieldsPerDataset truncates datasets for quick runs (0 = all).
	MaxFieldsPerDataset int
	// SimWorkers is passed to every simulated mesh as wse.Config.Workers:
	// 0 = one simulator worker per CPU, 1 = the sequential reference
	// engine, N > 1 = at most N workers. Results are identical either
	// way; only host wall time changes.
	SimWorkers int
	// HostWorkers is the host-codec worker budget used by the wall-clock
	// host benchmark (the "host" experiment): 0 or 1 = the sequential
	// zero-allocation path, N > 1 = shard each compress/decompress call
	// across a pooled N-worker runtime, negative = one worker per core.
	// The emitted bytes are identical at every setting; only throughput
	// changes.
	HostWorkers int
}

// mesh applies the configured simulator worker count to a mesh config.
func (c Config) mesh(m wse.Config) wse.Config {
	m.Workers = c.SimWorkers
	return m
}

// WithDefaults fills zero values.
func (c Config) WithDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// RelBounds are the paper's three evaluation bounds (§5.2).
var RelBounds = []float64{1e-2, 1e-3, 1e-4}

// PaperMesh is the PE grid used for Figs. 11–12 (§5.2).
var PaperMesh = wse.Config{Rows: 512, Cols: 512}

// fieldRun holds one field compressed at one bound.
type fieldRun struct {
	field *datasets.Field
	data  []float32
	eps   float64
	comp  []byte
	stats *core.Stats
	hdr   int
}

// runFields compresses every field of the dataset at the REL bound with
// the CereSZ host compressor and returns the per-field results.
func runFields(ds *datasets.Dataset, rel float64, cfg Config, headerBytes int) ([]fieldRun, error) {
	fields := ds.Fields
	if cfg.MaxFieldsPerDataset > 0 && len(fields) > cfg.MaxFieldsPerDataset {
		fields = fields[:cfg.MaxFieldsPerDataset]
	}
	out := make([]fieldRun, 0, len(fields))
	for i := range fields {
		f := &fields[i]
		data := f.Data(cfg.Seed)
		minV, maxV := quant.Range(data)
		eps, err := quant.REL(rel).Resolve(minV, maxV)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", ds.Name, f.Name, err)
		}
		comp, stats, err := core.CompressWithEps(nil, data, eps, core.Options{HeaderBytes: headerBytes})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", ds.Name, f.Name, err)
		}
		out = append(out, fieldRun{field: f, data: data, eps: eps, comp: comp, stats: stats, hdr: headerBytes})
	}
	return out, nil
}

// projectThroughput returns modeled CereSZ throughput in GB/s for the runs
// on the given mesh, for one direction.
func projectThroughput(runs []fieldRun, mesh wse.Config, dir stages.Direction) (float64, error) {
	var totalBytes, totalSecs float64
	for _, r := range runs {
		var chain *stages.Chain
		var err error
		cfg := stages.Config{Eps: r.eps, EstWidth: 8, HeaderBytes: r.hdr}
		if dir == stages.Compress {
			chain, err = stages.NewCompressChain(cfg)
		} else {
			chain, err = stages.NewDecompressChain(cfg)
		}
		if err != nil {
			return 0, err
		}
		plan, err := mapping.NewPlan(chain, mapping.PlanConfig{Mesh: mesh, PipelineLen: 1})
		if err != nil {
			return 0, err
		}
		w := mapping.Workload{
			Blocks:         r.stats.Blocks,
			Elements:       r.stats.Elements,
			WidthHist:      r.stats.WidthHistogram,
			VerbatimBlocks: r.stats.VerbatimBlocks,
		}
		if dir == stages.Compress {
			w.AvgInputWavelets = float64(core.DefaultBlockLen)
		} else {
			body := len(r.comp) - core.StreamHeaderSize
			w.AvgInputWavelets = float64(body) / 4 / float64(r.stats.Blocks)
		}
		proj, err := plan.Project(w)
		if err != nil {
			return 0, err
		}
		// The paper streams whole multi-GB datasets through the wafer, so
		// the steady-state rate is the regime Figs. 11–12 measure; our
		// synthetic fields are far smaller than 512×512 PEs can absorb.
		totalBytes += float64(4 * r.stats.Elements)
		totalSecs += float64(4*r.stats.Elements) / (proj.SteadyThroughputGBps * 1e9)
	}
	if totalSecs == 0 {
		return 0, nil
	}
	return totalBytes / totalSecs / 1e9, nil
}

// section prints a titled separator.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// hostStats compresses data on the host and returns the block statistics.
func hostStats(data []float32, eps float64) (*core.Stats, error) {
	_, stats, err := core.CompressWithEps(nil, data, eps, core.Options{})
	return stats, err
}
