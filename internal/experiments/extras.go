package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/baselines"
	"ceresz/internal/datasets"
	"ceresz/internal/quant"
)

// ExtraRow is one (dataset, compressor) summary for the extended family.
type ExtraRow struct {
	Dataset      string
	Compressor   string
	AvgRatio     float64
	ModeledGBps  float64
	ZeroFracMean float64
}

// ExtrasResult compares the full pre-quantization family the paper
// discusses in §3/§6.1 — cuSZp, FZ-GPU and cuSZx — beyond the Fig. 11 set,
// at REL 1e-3.
type ExtrasResult struct {
	Rows []ExtraRow
}

// Extras runs the extended-family comparison.
func Extras(cfg Config) (*ExtrasResult, error) {
	cfg = cfg.WithDefaults()
	comps := []baselines.Compressor{baselines.CuSZp{}, baselines.FZGPU{}, baselines.CuSZx{}}
	res := &ExtrasResult{}
	for _, ds := range datasets.All(cfg.Scale) {
		fields := ds.Fields
		if cfg.MaxFieldsPerDataset > 0 && len(fields) > cfg.MaxFieldsPerDataset {
			fields = fields[:cfg.MaxFieldsPerDataset]
		}
		for _, c := range comps {
			kernel, _, err := baselines.Kernels(c.Name())
			if err != nil {
				return nil, err
			}
			var ratioSum, zfSum float64
			var totalOrig, totalComp float64
			for i := range fields {
				f := &fields[i]
				data := f.Data(cfg.Seed)
				minV, maxV := quant.Range(data)
				eps, err := quant.REL(1e-3).Resolve(minV, maxV)
				if err != nil {
					return nil, err
				}
				cc, err := c.Compress(data, f.Dims, eps)
				if err != nil {
					return nil, fmt.Errorf("%s on %s/%s: %w", c.Name(), ds.Name, f.Name, err)
				}
				ratioSum += cc.Ratio()
				zfSum += cc.ZeroBlockFrac
				totalOrig += float64(4 * cc.Elements)
				totalComp += float64(len(cc.Bytes))
			}
			zf := zfSum / float64(len(fields))
			gbps, err := kernel.ThroughputGBps(totalOrig/totalComp, zf)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ExtraRow{
				Dataset:      ds.Name,
				Compressor:   c.Name(),
				AvgRatio:     ratioSum / float64(len(fields)),
				ModeledGBps:  gbps,
				ZeroFracMean: zf,
			})
		}
	}
	return res, nil
}

// PrintExtras renders the extended-family comparison.
func PrintExtras(w io.Writer, r *ExtrasResult) {
	section(w, "Extended pre-quantization family (§3/§6.1): cuSZp vs FZ-GPU vs cuSZx, REL 1e-3")
	fmt.Fprintf(w, "%-10s %-8s %10s %14s %10s\n", "Dataset", "codec", "avg ratio", "modeled GB/s", "fast-path")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-8s %10.2f %14.1f %9.1f%%\n",
			row.Dataset, row.Compressor, row.AvgRatio, row.ModeledGBps, 100*row.ZeroFracMean)
	}
	fmt.Fprintln(w, "cuSZx's block-centered quantization pays off where offsets dominate (HACC); FZ-GPU's bitplane suppression where residual widths vary")
}
