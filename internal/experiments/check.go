package experiments

import (
	"bytes"
	"fmt"
	"io"

	"ceresz/internal/baselines"
	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/mapping"
	"ceresz/internal/metrics"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// CheckResult is the self-check outcome: one line per invariant.
type CheckResult struct {
	// Passed and Failed list invariant descriptions.
	Passed, Failed []string
}

// OK reports whether every invariant held.
func (c *CheckResult) OK() bool { return len(c.Failed) == 0 }

func (c *CheckResult) check(ok bool, what string) {
	if ok {
		c.Passed = append(c.Passed, what)
	} else {
		c.Failed = append(c.Failed, what)
	}
}

// Check runs the repository's key functional invariants in one pass — a
// user-facing smoke test (`cereszbench check`) mirroring what the unit
// tests pin down:
//
//  1. the error bound holds pointwise for every compressor on a sample;
//  2. the simulated WSE pipeline emits bytes identical to the host
//     compressor (compression and decompression, multiple mesh shapes);
//  3. the pre-quantization family shares one reconstruction;
//  4. format ratio caps (32× / 128×) are never exceeded.
func Check(cfg Config) (*CheckResult, error) {
	cfg = cfg.WithDefaults()
	res := &CheckResult{}

	ds, err := datasets.ByName("NYX", cfg.Scale)
	if err != nil {
		return nil, err
	}
	f := &ds.Fields[3]
	data := f.Data(cfg.Seed)
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(1e-3).Resolve(minV, maxV)
	if err != nil {
		return nil, err
	}

	// 1. Bound for every compressor (CereSZ + extended baselines).
	comp, stats, err := core.CompressWithEps(nil, data, eps, core.Options{})
	if err != nil {
		return nil, err
	}
	rec, _, err := core.Decompress(nil, comp, 0)
	if err != nil {
		return nil, err
	}
	maxErr, err := metrics.MaxAbsError(data, rec)
	if err != nil {
		return nil, err
	}
	res.check(maxErr <= stats.Eps, fmt.Sprintf("CereSZ bound: max |err| %.3g ≤ ε %.3g", maxErr, stats.Eps))
	for _, c := range baselines.ExtendedSuite() {
		bc, err := c.Compress(data, f.Dims, eps)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name(), err)
		}
		brec, err := c.Decompress(bc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name(), err)
		}
		be, err := metrics.MaxAbsError(data, brec)
		if err != nil {
			return nil, err
		}
		// Baselines reconstruct into float32 without the strict fallback;
		// allow the half-ulp residue.
		slack := eps * (1 + 1e-9)
		var worstUlp float64
		for _, v := range data {
			u := ulp32(v)
			if u > worstUlp {
				worstUlp = u
			}
		}
		res.check(be <= slack+worstUlp/2,
			fmt.Sprintf("%s bound: max |err| %.3g ≤ ε(+ulp/2)", c.Name(), be))
	}

	// 2. Pipeline = host, both directions.
	sample := data[:32*256]
	hostC, _, err := core.CompressWithEps(nil, sample, eps, core.Options{Workers: 1})
	if err != nil {
		return nil, err
	}
	for _, shape := range []struct {
		mesh wse.Config
		pl   int
	}{
		{cfg.mesh(wse.Config{Rows: 1, Cols: 4}), 1},
		{cfg.mesh(wse.Config{Rows: 2, Cols: 6}), 3},
	} {
		chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: 8})
		if err != nil {
			return nil, err
		}
		plan, err := mapping.NewPlan(chain, mapping.PlanConfig{Mesh: shape.mesh, PipelineLen: shape.pl})
		if err != nil {
			return nil, err
		}
		simR, err := plan.Compress(sample)
		if err != nil {
			return nil, err
		}
		res.check(bytes.Equal(simR.Bytes, hostC),
			fmt.Sprintf("pipeline=host bytes on %dx%d mesh, pipeline length %d",
				shape.mesh.Rows, shape.mesh.Cols, shape.pl))
	}
	dchain, err := stages.NewDecompressChain(stages.Config{Eps: eps, EstWidth: 8})
	if err != nil {
		return nil, err
	}
	dplan, err := mapping.NewPlan(dchain, mapping.PlanConfig{Mesh: cfg.mesh(wse.Config{Rows: 2, Cols: 4}), PipelineLen: 2})
	if err != nil {
		return nil, err
	}
	dsim, err := dplan.Decompress(hostC)
	if err != nil {
		return nil, err
	}
	dhost, _, err := core.Decompress(nil, hostC, 0)
	if err != nil {
		return nil, err
	}
	same := len(dsim.Data) == len(dhost)
	if same {
		for i := range dhost {
			if dsim.Data[i] != dhost[i] {
				same = false
				break
			}
		}
	}
	res.check(same, "pipeline=host decompression")

	// 3. Shared reconstruction across the pre-quantization family.
	szp, err := (baselines.SZp{}).Compress(data, f.Dims, eps)
	if err != nil {
		return nil, err
	}
	szpRec, err := (baselines.SZp{}).Decompress(szp)
	if err != nil {
		return nil, err
	}
	identical := len(szpRec) == len(rec)
	if identical {
		for i := range rec {
			if szpRec[i] != rec[i] {
				identical = false
				break
			}
		}
	}
	res.check(identical, "CereSZ and SZp reconstructions bit-identical")

	// 4. Ratio caps over the whole dataset set.
	capsOK := true
	for _, d2 := range datasets.All(cfg.Scale) {
		n := len(d2.Fields)
		if cfg.MaxFieldsPerDataset > 0 && n > cfg.MaxFieldsPerDataset {
			n = cfg.MaxFieldsPerDataset
		}
		for i := 0; i < n; i++ {
			fd := &d2.Fields[i]
			fdata := fd.Data(cfg.Seed)
			lo, hi := quant.Range(fdata)
			feps, err := quant.REL(1e-2).Resolve(lo, hi)
			if err != nil {
				return nil, err
			}
			_, s32, err := core.CompressWithEps(nil, fdata, feps, core.Options{})
			if err != nil {
				return nil, err
			}
			if s32.Ratio() > 32 {
				capsOK = false
			}
		}
	}
	res.check(capsOK, "CereSZ 32x ratio cap holds on every field")

	return res, nil
}

// ulp32 returns the distance to the next float32 above |v|.
func ulp32(v float32) float64 {
	f := float64(v)
	if f < 0 {
		f = -f
	}
	return f * 1.2e-7
}

// PrintCheck renders the self-check.
func PrintCheck(w io.Writer, r *CheckResult) {
	section(w, "Self-check: functional invariants")
	for _, p := range r.Passed {
		fmt.Fprintf(w, "  PASS %s\n", p)
	}
	for _, f := range r.Failed {
		fmt.Fprintf(w, "  FAIL %s\n", f)
	}
	if r.OK() {
		fmt.Fprintln(w, "all invariants hold")
	} else {
		fmt.Fprintf(w, "%d invariant(s) FAILED\n", len(r.Failed))
	}
}
