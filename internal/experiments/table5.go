package experiments

import (
	"fmt"
	"io"
	"math"

	"ceresz/internal/baselines"
	"ceresz/internal/datasets"
	"ceresz/internal/flenc"
	"ceresz/internal/quant"
)

// RatioCell is one (compressor, dataset, bound) compression-ratio summary.
type RatioCell struct {
	Compressor string
	Dataset    string
	Rel        float64
	Min, Max   float64
	Avg        float64
}

// Table5Result reproduces Table 5: per-field compression-ratio ranges and
// averages for CereSZ and the four baselines across six datasets and three
// bounds.
type Table5Result struct {
	Cells []RatioCell
}

// PaperTable5Avg records the paper's Table 5 averages for CereSZ, for the
// recorded-vs-measured log in EXPERIMENTS.md.
var PaperTable5Avg = map[string]map[float64]float64{
	"CESM-ATM":  {1e-2: 8.73, 1e-3: 6.49, 1e-4: 5.11},
	"HACC":      {1e-2: 6.82, 1e-3: 4.05, 1e-4: 2.83},
	"Hurricane": {1e-2: 17.10, 1e-3: 12.57, 1e-4: 9.64},
	"NYX":       {1e-2: 20.22, 1e-3: 14.05, 1e-4: 9.61},
	"QMCPack":   {1e-2: 14.63, 1e-3: 7.16, 1e-4: 4.23},
	"RTM":       {1e-2: 23.46, 1e-3: 17.73, 1e-4: 12.87},
}

// Table5 measures the per-field ratios of every compressor.
func Table5(cfg Config) (*Table5Result, error) {
	cfg = cfg.WithDefaults()
	res := &Table5Result{}
	for _, ds := range datasets.All(cfg.Scale) {
		for _, rel := range RelBounds {
			// CereSZ from the host compressor's stats (u32 headers).
			runs, err := runFields(ds, rel, cfg, flenc.HeaderU32)
			if err != nil {
				return nil, err
			}
			cell := RatioCell{Compressor: "CereSZ", Dataset: ds.Name, Rel: rel, Min: math.Inf(1)}
			var sum float64
			for _, r := range runs {
				ratio := r.stats.Ratio()
				cell.Min = math.Min(cell.Min, ratio)
				cell.Max = math.Max(cell.Max, ratio)
				sum += ratio
			}
			cell.Avg = sum / float64(len(runs))
			res.Cells = append(res.Cells, cell)

			// Baselines by running each compressor per field.
			for _, c := range baselines.Suite() {
				bc := RatioCell{Compressor: c.Name(), Dataset: ds.Name, Rel: rel, Min: math.Inf(1)}
				var bSum float64
				fields := ds.Fields
				if cfg.MaxFieldsPerDataset > 0 && len(fields) > cfg.MaxFieldsPerDataset {
					fields = fields[:cfg.MaxFieldsPerDataset]
				}
				for i := range fields {
					f := &fields[i]
					data := f.Data(cfg.Seed)
					minV, maxV := quant.Range(data)
					eps, err := quant.REL(rel).Resolve(minV, maxV)
					if err != nil {
						return nil, err
					}
					cc, err := c.Compress(data, f.Dims, eps)
					if err != nil {
						return nil, fmt.Errorf("%s on %s/%s: %w", c.Name(), ds.Name, f.Name, err)
					}
					ratio := cc.Ratio()
					bc.Min = math.Min(bc.Min, ratio)
					bc.Max = math.Max(bc.Max, ratio)
					bSum += ratio
				}
				bc.Avg = bSum / float64(len(fields))
				res.Cells = append(res.Cells, bc)
			}
		}
	}
	return res, nil
}

// Find returns the cell for (compressor, dataset, rel), if present.
func (t *Table5Result) Find(compressor, dataset string, rel float64) (RatioCell, bool) {
	for _, c := range t.Cells {
		if c.Compressor == compressor && c.Dataset == dataset && c.Rel == rel {
			return c, true
		}
	}
	return RatioCell{}, false
}

// PrintTable5 renders the ratio table grouped like the paper's Table 5.
func PrintTable5(w io.Writer, t *Table5Result) {
	section(w, "Table 5: compression ratios (range and average per field)")
	for _, comp := range []string{"CereSZ", "SZp", "cuSZp", "SZ", "cuSZ"} {
		fmt.Fprintf(w, "\n%s\n", comp)
		fmt.Fprintf(w, "  %-10s", "REL")
		for _, ds := range datasets.Names() {
			fmt.Fprintf(w, " %-22s", ds)
		}
		fmt.Fprintln(w)
		for _, rel := range RelBounds {
			fmt.Fprintf(w, "  %-10.0e", rel)
			for _, ds := range datasets.Names() {
				if c, ok := t.Find(comp, ds, rel); ok {
					fmt.Fprintf(w, " %6.2f~%-7.2f a=%-6.2f", c.Min, c.Max, c.Avg)
				} else {
					fmt.Fprintf(w, " %-22s", "N/A")
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\npaper CereSZ averages for comparison:")
	for _, ds := range datasets.Names() {
		fmt.Fprintf(w, "  %-10s", ds)
		for _, rel := range RelBounds {
			meas, _ := t.Find("CereSZ", ds, rel)
			fmt.Fprintf(w, "  %0.0e: %.2f (paper %.2f)", rel, meas.Avg, PaperTable5Avg[ds][rel])
		}
		fmt.Fprintln(w)
	}
}
