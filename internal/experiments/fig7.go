package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/datasets"
	"ceresz/internal/mapping"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// Fig7Point is one point of the Fig. 7 row-scaling curve.
type Fig7Point struct {
	Rows           int
	Cycles         int64
	ThroughputMBps float64
	// Simulated distinguishes event-simulated points from analytic
	// extrapolations (the paper's plot reaches 512 rows).
	Simulated bool
}

// Fig7Result is the Fig. 7 reproduction: compression throughput of the NYX
// temperature field versus the number of PE rows, one single-PE pipeline
// per row (§4.1: "using the first PE of each row", block size 32).
type Fig7Result struct {
	Points []Fig7Point
	// LinearityErr is nil when rows×time is constant within 10%.
	LinearityErr error
}

// Fig7 runs the row-scaling experiment: event simulation up to 32 rows,
// analytic model beyond.
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.WithDefaults()
	ds, err := datasets.ByName("NYX", cfg.Scale)
	if err != nil {
		return nil, err
	}
	data := ds.Fields[0].Data(cfg.Seed) // temperature
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(1e-3).Resolve(minV, maxV)
	if err != nil {
		return nil, err
	}

	res := &Fig7Result{}
	var xs []int
	var times []float64
	for _, rows := range []int{1, 2, 4, 8, 16, 32} {
		chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: 8})
		if err != nil {
			return nil, err
		}
		plan, err := mapping.NewPlan(chain, mapping.PlanConfig{
			Mesh:        cfg.mesh(wse.Config{Rows: rows, Cols: 1}),
			PipelineLen: 1,
		})
		if err != nil {
			return nil, err
		}
		r, err := plan.Compress(data)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig7Point{
			Rows:           rows,
			Cycles:         r.Cycles,
			ThroughputMBps: r.ThroughputGBps * 1000,
			Simulated:      true,
		})
		xs = append(xs, rows)
		times = append(times, float64(r.Cycles))
	}
	res.LinearityErr = mapping.SpeedupIsLinear(xs, times, 0.10)

	// Analytic extrapolation to the paper's 512-row axis, anchored on the
	// same workload statistics.
	stats, err := hostStats(data, eps)
	if err != nil {
		return nil, err
	}
	for _, rows := range []int{64, 128, 256, 512} {
		chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: 8})
		if err != nil {
			return nil, err
		}
		plan, err := mapping.NewPlan(chain, mapping.PlanConfig{
			Mesh:        cfg.mesh(wse.Config{Rows: rows, Cols: 1}),
			PipelineLen: 1,
		})
		if err != nil {
			return nil, err
		}
		w := mapping.Workload{
			Blocks:           stats.Blocks,
			Elements:         stats.Elements,
			WidthHist:        stats.WidthHistogram,
			VerbatimBlocks:   stats.VerbatimBlocks,
			AvgInputWavelets: 32,
		}
		proj, err := plan.Project(w)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig7Point{
			Rows:           rows,
			Cycles:         int64(proj.TotalCycles),
			ThroughputMBps: proj.ThroughputGBps * 1000,
		})
	}
	return res, nil
}

// PrintFig7 renders the row-scaling series.
func PrintFig7(w io.Writer, r *Fig7Result) {
	section(w, "Fig. 7: compression throughput vs number of PE rows (NYX temperature, block 32)")
	fmt.Fprintf(w, "%6s %14s %16s %s\n", "rows", "cycles", "throughput MB/s", "source")
	for _, p := range r.Points {
		src := "analytic model"
		if p.Simulated {
			src = "event simulation"
		}
		fmt.Fprintf(w, "%6d %14d %16.1f %s\n", p.Rows, p.Cycles, p.ThroughputMBps, src)
	}
	if r.LinearityErr == nil {
		fmt.Fprintln(w, "linear speedup across rows: CONFIRMED (paper Fig. 7 shows the same)")
	} else {
		fmt.Fprintf(w, "linear speedup across rows: VIOLATED: %v\n", r.LinearityErr)
	}
}
