package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/datasets"
	"ceresz/internal/flenc"
	"ceresz/internal/mapping"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// Fig14Point is one WSE-size throughput measurement.
type Fig14Point struct {
	Dataset        string
	Rows, Cols     int
	ThroughputGBps float64
}

// Fig14Result reproduces Fig. 14: compression throughput as a function of
// the WSE size (16² … 512², then the full 750×994 wafer) on the whole
// CESM-ATM and HACC datasets at REL 1e-4. The paper's quantitative claim
// (§5.2) is "the throughput of using a 32x32 WSE is about 4 times of that
// using a 16x16"; at larger widths the west-edge relay term (Formula (2))
// costs per-PE efficiency, which the paper folds into "negligible" and we
// report explicitly.
type Fig14Result struct {
	Points []Fig14Point
	// QuadruplingRatio[dataset] is throughput(32²)/throughput(16²); the
	// paper reports ≈4.
	QuadruplingRatio map[string]float64
	// Efficiency512 is per-PE throughput at 512² relative to 16².
	Efficiency512 map[string]float64
}

// Fig14 projects the mesh-size sweep with the validated analytic model
// (the event simulator confirms linearity on small meshes; see the mapping
// package tests).
func Fig14(cfg Config) (*Fig14Result, error) {
	cfg = cfg.WithDefaults()
	sizes := [][2]int{{16, 16}, {32, 32}, {64, 64}, {128, 128}, {256, 256}, {512, 512}, {750, 994}}
	res := &Fig14Result{QuadruplingRatio: map[string]float64{}, Efficiency512: map[string]float64{}}
	for _, name := range []string{"CESM-ATM", "HACC"} {
		ds, err := datasets.ByName(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		runs, err := runFields(ds, 1e-4, cfg, flenc.HeaderU32)
		if err != nil {
			return nil, err
		}
		perSize := map[int]float64{}
		for _, sz := range sizes {
			mesh := cfg.mesh(wse.Config{Rows: sz[0], Cols: sz[1]})
			var totalBytes, totalSecs float64
			for _, r := range runs {
				chain, err := stages.NewCompressChain(stages.Config{Eps: r.eps, EstWidth: 8})
				if err != nil {
					return nil, err
				}
				plan, err := mapping.NewPlan(chain, mapping.PlanConfig{Mesh: mesh, PipelineLen: 1})
				if err != nil {
					return nil, err
				}
				proj, err := plan.Project(mapping.Workload{
					Blocks:           r.stats.Blocks,
					Elements:         r.stats.Elements,
					WidthHist:        r.stats.WidthHistogram,
					VerbatimBlocks:   r.stats.VerbatimBlocks,
					AvgInputWavelets: 32,
				})
				if err != nil {
					return nil, err
				}
				totalBytes += float64(4 * r.stats.Elements)
				totalSecs += float64(4*r.stats.Elements) / (proj.SteadyThroughputGBps * 1e9)
			}
			gbps := totalBytes / totalSecs / 1e9
			res.Points = append(res.Points, Fig14Point{
				Dataset: name, Rows: sz[0], Cols: sz[1], ThroughputGBps: gbps,
			})
			perSize[sz[0]*sz[1]] = gbps
		}
		res.QuadruplingRatio[name] = perSize[32*32] / perSize[16*16]
		res.Efficiency512[name] = (perSize[512*512] / float64(512*512)) / (perSize[16*16] / float64(16*16))
	}
	return res, nil
}

// PrintFig14 renders the WSE-size sweep.
func PrintFig14(w io.Writer, r *Fig14Result) {
	section(w, "Fig. 14: compression throughput vs WSE size (REL 1e-4)")
	fmt.Fprintf(w, "%-10s %12s %18s\n", "Dataset", "mesh", "throughput GB/s")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10s %5dx%-6d %18.2f\n", p.Dataset, p.Rows, p.Cols, p.ThroughputGBps)
	}
	for ds, ratio := range r.QuadruplingRatio {
		fmt.Fprintf(w, "%s: 16x16 -> 32x32 speedup %.2fx (paper: 'about 4 times'); per-PE efficiency at 512x512 = %.0f%% of 16x16 (west-edge relay term, Formula (2))\n",
			ds, ratio, 100*r.Efficiency512[ds])
	}
}
