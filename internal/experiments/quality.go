package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/flenc"
	"ceresz/internal/metrics"
)

// QualityCell is one (dataset, bound) reconstruction-quality summary,
// averaged over fields.
type QualityCell struct {
	Dataset  string
	Rel      float64
	PSNR     float64 // dB, mean over fields
	SSIM     float64 // mean over fields with ≥2D grids; NaN-free, -1 if none
	MaxRelEr float64 // max |error|/range over all fields (must be ≤ Rel)
}

// QualityResult extends Fig. 15 to a full table: PSNR/SSIM for CereSZ on
// every dataset and bound. Because every pre-quantization compressor
// shares the reconstruction, this table equally describes cuSZp/SZp/cuSZ.
type QualityResult struct {
	Cells []QualityCell
}

// Quality runs the table.
func Quality(cfg Config) (*QualityResult, error) {
	cfg = cfg.WithDefaults()
	res := &QualityResult{}
	for _, ds := range datasets.All(cfg.Scale) {
		for _, rel := range RelBounds {
			runs, err := runFields(ds, rel, cfg, flenc.HeaderU32)
			if err != nil {
				return nil, err
			}
			cell := QualityCell{Dataset: ds.Name, Rel: rel, SSIM: -1}
			var psnrSum, ssimSum float64
			var ssimN int
			for _, r := range runs {
				rec, _, err := core.Decompress(nil, r.comp, 0)
				if err != nil {
					return nil, err
				}
				psnr, err := metrics.PSNR(r.data, rec)
				if err != nil {
					return nil, err
				}
				psnrSum += psnr
				if r.field.Dims.Ny >= 8 { // SSIM needs an 8×8 window
					s, err := metrics.SSIM(r.data, rec, r.field.Dims)
					if err != nil {
						return nil, err
					}
					ssimSum += s
					ssimN++
				}
				maxErr, err := metrics.MaxAbsError(r.data, rec)
				if err != nil {
					return nil, err
				}
				// Normalize to the field's range via ε = rel · range.
				if r.eps > 0 {
					if rr := maxErr / (r.eps / rel); rr > cell.MaxRelEr {
						cell.MaxRelEr = rr
					}
				}
			}
			cell.PSNR = psnrSum / float64(len(runs))
			if ssimN > 0 {
				cell.SSIM = ssimSum / float64(ssimN)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// PrintQuality renders the table.
func PrintQuality(w io.Writer, r *QualityResult) {
	section(w, "Reconstruction quality (CereSZ = cuSZp = SZp reconstructions)")
	fmt.Fprintf(w, "%-10s %-9s %10s %10s %14s\n", "Dataset", "REL", "PSNR dB", "SSIM", "max rel err")
	for _, c := range r.Cells {
		ssim := "n/a (1D)"
		if c.SSIM >= 0 {
			ssim = fmt.Sprintf("%.6f", c.SSIM)
		}
		fmt.Fprintf(w, "%-10s %-9.0e %10.2f %10s %14.2e\n", c.Dataset, c.Rel, c.PSNR, ssim, c.MaxRelEr)
	}
	fmt.Fprintln(w, "every max relative error is ≤ its REL bound — the error-bound contract, dataset-wide")
}
