package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/quant"
)

// HostBenchRow is one measured host-codec data point: a single field at a
// single bound in one direction, timed on the real (not modeled) kernels.
type HostBenchRow struct {
	Dataset   string
	Field     string
	Direction string // "compress" or "decompress"
	Rel       float64
	Elements  int
	NsPerOp   float64
	NsPerElem float64
	GBps      float64
	Ratio     float64
}

// HostBenchResult reports wall-clock host throughput of the SWAR kernels,
// complementing the modeled WSE numbers of Figs. 11–12. Rows carry
// ns/element and GB/s so runs are comparable across field sizes.
type HostBenchResult struct {
	Workers int
	Rows    []HostBenchRow
}

// hostBenchIters picks an iteration count that keeps each measurement
// around targetNs without letting tiny fields spin forever.
func hostBenchIters(onceNs, targetNs float64) int {
	if onceNs <= 0 {
		return 1
	}
	n := int(targetNs / onceNs)
	if n < 3 {
		n = 3
	}
	if n > 1000 {
		n = 1000
	}
	return n
}

// timeBest runs fn iters times and returns the fastest single run in ns —
// the usual microbenchmark estimator for the noise-free cost.
func timeBest(iters int, fn func()) float64 {
	best := float64(0)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		fn()
		d := float64(time.Since(t0).Nanoseconds())
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// HostBench times the real host compressor and decompressor (steady
// state, reused buffers) over every dataset at the paper's three REL
// bounds, running each call with cfg.HostWorkers block shards (0/1 =
// sequential, negative = one per core).
func HostBench(cfg Config) (*HostBenchResult, error) {
	cfg = cfg.WithDefaults()
	res := &HostBenchResult{Workers: cfg.HostWorkers}
	if res.Workers < 0 {
		res.Workers = runtime.GOMAXPROCS(0)
	} else if res.Workers == 0 {
		res.Workers = 1
	}
	const targetNs = 30e6 // ~30ms per measurement
	var comp []byte
	var out []float32
	var stats core.Stats
	for _, ds := range datasets.All(cfg.Scale) {
		fields := ds.Fields
		if cfg.MaxFieldsPerDataset > 0 && len(fields) > cfg.MaxFieldsPerDataset {
			fields = fields[:cfg.MaxFieldsPerDataset]
		}
		for i := range fields {
			f := &fields[i]
			data := f.Data(cfg.Seed)
			if len(data) == 0 {
				continue
			}
			bytesIn := float64(4 * len(data))
			for _, rel := range RelBounds {
				minV, maxV := quant.Range(data)
				eps, err := quant.REL(rel).Resolve(minV, maxV)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", ds.Name, f.Name, err)
				}
				opts := core.Options{Workers: res.Workers}
				compress := func() {
					var cerr error
					comp, cerr = core.CompressWithEpsInto(comp[:0], data, eps, opts, &stats)
					if cerr != nil {
						err = cerr
					}
				}
				once := timeBest(1, compress) // warm-up sizes comp and fills the pool
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", ds.Name, f.Name, err)
				}
				cNs := timeBest(hostBenchIters(once, targetNs), compress)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", ds.Name, f.Name, err)
				}
				res.Rows = append(res.Rows, HostBenchRow{
					Dataset:   ds.Name,
					Field:     f.Name,
					Direction: "compress",
					Rel:       rel,
					Elements:  len(data),
					NsPerOp:   cNs,
					NsPerElem: cNs / float64(len(data)),
					GBps:      bytesIn / cNs, // bytes/ns == GB/s
					Ratio:     bytesIn / float64(len(comp)),
				})
				decompress := func() {
					var derr error
					out, _, derr = core.Decompress(out[:0], comp, res.Workers)
					if derr != nil {
						err = derr
					}
				}
				once = timeBest(1, decompress)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", ds.Name, f.Name, err)
				}
				dNs := timeBest(hostBenchIters(once, targetNs), decompress)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", ds.Name, f.Name, err)
				}
				res.Rows = append(res.Rows, HostBenchRow{
					Dataset:   ds.Name,
					Field:     f.Name,
					Direction: "decompress",
					Rel:       rel,
					Elements:  len(data),
					NsPerOp:   dNs,
					NsPerElem: dNs / float64(len(data)),
					GBps:      bytesIn / dNs,
					Ratio:     bytesIn / float64(len(comp)),
				})
			}
		}
	}
	return res, nil
}

// PrintHostBench renders the wall-clock host-codec table.
func PrintHostBench(w io.Writer, r *HostBenchResult) {
	section(w, fmt.Sprintf("Host codec wall-clock throughput (SWAR kernels, workers=%d)", r.Workers))
	fmt.Fprintf(w, "%-12s %-14s %-11s %8s %10s %12s %10s %8s %7s\n",
		"Dataset", "field", "direction", "REL", "elements", "ns/op", "ns/elem", "GB/s", "ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %-14s %-11s %8.0e %10d %12.0f %10.2f %8.2f %7.2f\n",
			row.Dataset, row.Field, row.Direction, row.Rel, row.Elements,
			row.NsPerOp, row.NsPerElem, row.GBps, row.Ratio)
	}
}
