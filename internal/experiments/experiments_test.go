package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ceresz/internal/stages"
)

// quickCfg trims datasets so the whole experiment suite runs in seconds.
func quickCfg() Config {
	return Config{Seed: 7, MaxFieldsPerDataset: 2}
}

func TestStageProfiles(t *testing.T) {
	rows, err := StageProfiles(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.PreQuant != r.Mul+r.Add {
			t.Fatalf("%s: PreQuant %d != Mul+Add %d", r.Dataset, r.PreQuant, r.Mul+r.Add)
		}
		if r.FLEncode != r.Sign+r.Max+r.GetLength+r.BitShuffle {
			t.Fatalf("%s: FLEncode inconsistent", r.Dataset)
		}
		// The calibrated model must sit near the paper's Pre-Quant and
		// Lorenzo columns (they are width-independent).
		if math.Abs(float64(r.PreQuant-r.Paper.PreQuant)) > 100 {
			t.Fatalf("%s: PreQuant %d vs paper %d", r.Dataset, r.PreQuant, r.Paper.PreQuant)
		}
		if r.Lorenzo != 975 {
			t.Fatalf("%s: Lorenzo %d, want 975", r.Dataset, r.Lorenzo)
		}
		if r.MaxWidth < 1 || r.MaxWidth > 32 {
			t.Fatalf("%s: width %d out of range", r.Dataset, r.MaxWidth)
		}
	}
	var buf bytes.Buffer
	PrintStageProfiles(&buf, rows)
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Bit-shuffle", "CESM-ATM"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestFig7(t *testing.T) {
	r, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.LinearityErr != nil {
		t.Fatalf("row scaling not linear: %v", r.LinearityErr)
	}
	if len(r.Points) != 10 {
		t.Fatalf("%d points, want 10", len(r.Points))
	}
	// Throughput must grow monotonically with rows.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].ThroughputMBps <= r.Points[i-1].ThroughputMBps {
			t.Fatalf("throughput not increasing at %d rows", r.Points[i].Rows)
		}
	}
	// The analytic extension must continue the simulated trend: per-row
	// throughput within 30% between the last simulated and first modeled
	// points.
	var lastSim, firstModel Fig7Point
	for _, p := range r.Points {
		if p.Simulated {
			lastSim = p
		} else {
			firstModel = p
			break
		}
	}
	perRowSim := lastSim.ThroughputMBps / float64(lastSim.Rows)
	perRowModel := firstModel.ThroughputMBps / float64(firstModel.Rows)
	if math.Abs(perRowModel-perRowSim)/perRowSim > 0.30 {
		t.Fatalf("model/simulation mismatch: %.2f vs %.2f MB/s per row", perRowModel, perRowSim)
	}
	var buf bytes.Buffer
	PrintFig7(&buf, r)
	if !strings.Contains(buf.String(), "CONFIRMED") {
		t.Fatal("Fig. 7 output does not confirm linearity")
	}
}

func TestFig10(t *testing.T) {
	r, err := Fig10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.ALinearityErr != nil {
		t.Fatalf("relay time not linear in columns: %v", r.ALinearityErr)
	}
	// (b): per-PE execution time must decrease as pipelines lengthen.
	for i := 1; i < len(r.B); i++ {
		if r.B[i].ExecCyclesPerPEPerBlock >= r.B[i-1].ExecCyclesPerPEPerBlock {
			t.Fatalf("per-PE execution did not fall: len %d -> %d: %.0f -> %.0f",
				r.B[i-1].PipelineLen, r.B[i].PipelineLen,
				r.B[i-1].ExecCyclesPerPEPerBlock, r.B[i].ExecCyclesPerPEPerBlock)
		}
	}
	var buf bytes.Buffer
	PrintFig10(&buf, r)
	if !strings.Contains(buf.String(), "Formula (2)") {
		t.Fatal("Fig. 10 output incomplete")
	}
}

func TestThroughputFig11Fig12(t *testing.T) {
	cfg := quickCfg()
	comp, err := Throughput(cfg, stages.Compress)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Throughput(cfg, stages.Decompress)
	if err != nil {
		t.Fatal(err)
	}
	// Headline shape: CereSZ in the paper's hundreds-of-GB/s band and
	// several-fold faster than the fastest baseline.
	if comp.CereSZAvg < 250 || comp.CereSZAvg > 900 {
		t.Fatalf("CereSZ compression average %.1f GB/s outside the plausible band", comp.CereSZAvg)
	}
	speedup := comp.CereSZAvg / comp.CuSZpAvg
	if speedup < 2.4 || speedup > 11 {
		t.Fatalf("compression speedup over cuSZp %.2fx outside the paper's 2.43–10.98x envelope", speedup)
	}
	// Decompression is faster than compression (paper: 581 vs 457).
	if dec.CereSZAvg <= comp.CereSZAvg {
		t.Fatalf("decompression average %.1f not above compression average %.1f",
			dec.CereSZAvg, comp.CereSZAvg)
	}
	if s := dec.CereSZAvg / dec.CuSZpAvg; s < 2.4 || s > 11 {
		t.Fatalf("decompression speedup %.2fx outside the paper's envelope", s)
	}
	// Every (dataset, bound) must have all five compressors.
	if len(comp.Cells) != 6*3*5 {
		t.Fatalf("%d cells, want 90", len(comp.Cells))
	}
	// Within each dataset, CereSZ throughput must not increase as the
	// bound tightens (zero blocks disappear).
	byKey := map[string]float64{}
	for _, c := range comp.Cells {
		if c.Compressor == "CereSZ" {
			byKey[c.Dataset+"|"+relKey(c.Rel)] = c.GBps
		}
	}
	for _, ds := range []string{"RTM", "NYX", "QMCPack"} {
		if !(byKey[ds+"|1e-02"] >= byKey[ds+"|1e-03"] && byKey[ds+"|1e-03"] >= byKey[ds+"|1e-04"]) {
			t.Fatalf("%s: throughput not monotone in bound: %v %v %v",
				ds, byKey[ds+"|1e-02"], byKey[ds+"|1e-03"], byKey[ds+"|1e-04"])
		}
	}
	var buf bytes.Buffer
	PrintThroughput(&buf, comp)
	PrintThroughput(&buf, dec)
	for _, want := range []string{"Fig. 11", "Fig. 12", "speedup"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func relKey(rel float64) string {
	switch rel {
	case 1e-2:
		return "1e-02"
	case 1e-3:
		return "1e-03"
	default:
		return "1e-04"
	}
}

func TestTable5(t *testing.T) {
	r, err := Table5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 6 datasets × 3 bounds × 5 compressors.
	if len(r.Cells) != 90 {
		t.Fatalf("%d cells, want 90", len(r.Cells))
	}
	for _, ds := range []string{"CESM-ATM", "NYX", "RTM"} {
		for _, rel := range RelBounds {
			ceresz, ok1 := r.Find("CereSZ", ds, rel)
			szp, ok2 := r.Find("SZp", ds, rel)
			sz, ok3 := r.Find("SZ", ds, rel)
			if !ok1 || !ok2 || !ok3 {
				t.Fatalf("missing cells for %s at %g", ds, rel)
			}
			// Observation 2: SZp ≥ CereSZ (1-byte vs 4-byte headers).
			if szp.Avg < ceresz.Avg {
				t.Fatalf("%s %g: SZp avg %.2f below CereSZ %.2f", ds, rel, szp.Avg, ceresz.Avg)
			}
			// SZ leads everything (§5.3).
			if sz.Avg < ceresz.Avg {
				t.Fatalf("%s %g: SZ avg %.2f below CereSZ %.2f", ds, rel, sz.Avg, ceresz.Avg)
			}
			if ceresz.Min > ceresz.Avg || ceresz.Avg > ceresz.Max {
				t.Fatalf("%s %g: min/avg/max inconsistent", ds, rel)
			}
			// CereSZ can never exceed its 32x zero-block cap.
			if ceresz.Max > 32 {
				t.Fatalf("%s %g: CereSZ ratio %.2f above the 128/4 cap", ds, rel, ceresz.Max)
			}
		}
	}
	var buf bytes.Buffer
	PrintTable5(&buf, r)
	if !strings.Contains(buf.String(), "Table 5") {
		t.Fatal("output incomplete")
	}
}

func TestFig13(t *testing.T) {
	r, err := Fig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !r.SinglePEFastest {
		t.Fatal("single-PE pipeline not fastest (Fig. 13 shape broken)")
	}
	if len(r.Points) != 24 {
		t.Fatalf("%d points, want 24 (two datasets x two directions x six lengths)", len(r.Points))
	}
	var buf bytes.Buffer
	PrintFig13(&buf, r)
	if !strings.Contains(buf.String(), "CONFIRMED") {
		t.Fatal("Fig. 13 output incomplete")
	}
}

func TestFig14(t *testing.T) {
	r, err := Fig14(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for ds, ratio := range r.QuadruplingRatio {
		// Paper §5.2: 32x32 is "about 4 times" 16x16.
		if ratio < 3.5 || ratio > 4.5 {
			t.Fatalf("%s: 16->32 quadrupling ratio %.2f outside [3.5,4.5]", ds, ratio)
		}
		if eff := r.Efficiency512[ds]; eff < 0.4 || eff > 1.05 {
			t.Fatalf("%s: 512x512 per-PE efficiency %.2f implausible", ds, eff)
		}
	}
	// Throughput must grow with mesh size per dataset.
	last := map[string]float64{}
	for _, p := range r.Points {
		if prev, ok := last[p.Dataset]; ok && p.ThroughputGBps <= prev {
			t.Fatalf("%s: throughput fell at %dx%d", p.Dataset, p.Rows, p.Cols)
		}
		last[p.Dataset] = p.ThroughputGBps
	}
	var buf bytes.Buffer
	PrintFig14(&buf, r)
	if !strings.Contains(buf.String(), "750x994") {
		t.Fatal("full-wafer point missing")
	}
}

func TestFig15(t *testing.T) {
	r, err := Fig15(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatal("CereSZ and cuSZp reconstructions differ (Observation 3 broken)")
	}
	if r.CuSZpRatio <= r.CereSZRatio {
		t.Fatalf("cuSZp ratio %.2f not above CereSZ %.2f (4-byte header penalty)", r.CuSZpRatio, r.CereSZRatio)
	}
	if r.MaxError > r.Eps {
		t.Fatalf("max error %g exceeds ε %g", r.MaxError, r.Eps)
	}
	if r.SSIM < 0.99 || r.PSNR < 40 {
		t.Fatalf("quality implausibly low: SSIM %.4f PSNR %.1f", r.SSIM, r.PSNR)
	}
	var buf bytes.Buffer
	PrintFig15(&buf, r)
	if !strings.Contains(buf.String(), "bit-identical") {
		t.Fatal("Fig. 15 output incomplete")
	}
}

func TestAlg1(t *testing.T) {
	r, err := Alg1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxLen < 2 {
		t.Fatalf("max pipeline length %d, want ≥2 for fl=17", r.MaxLen)
	}
	// Bottleneck must be non-increasing as the pipeline lengthens and can
	// never drop below the largest indivisible stage (Mul).
	var mulCost int64
	for i, n := range r.StageNames {
		if n == "Mul" {
			mulCost = r.Costs[i]
		}
	}
	for m := 1; m < len(r.Bottlenecks); m++ {
		if r.Bottlenecks[m] > r.Bottlenecks[m-1] {
			t.Fatalf("bottleneck grew from length %d to %d", m, m+1)
		}
	}
	if r.Bottlenecks[len(r.Bottlenecks)-1] < mulCost {
		t.Fatalf("bottleneck %d below the indivisible Mul stage %d", r.Bottlenecks[len(r.Bottlenecks)-1], mulCost)
	}
	var buf bytes.Buffer
	PrintAlg1(&buf, r)
	if !strings.Contains(buf.String(), "max useful pipeline length") {
		t.Fatal("Alg. 1 output incomplete")
	}
}

func TestRateDistortion(t *testing.T) {
	r, err := RateDistortion(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 15 {
		t.Fatalf("%d points, want 15", len(r.Points))
	}
	byRel := map[float64]map[string]RateDistortionPoint{}
	for _, p := range r.Points {
		if byRel[p.Rel] == nil {
			byRel[p.Rel] = map[string]RateDistortionPoint{}
		}
		byRel[p.Rel][p.Compressor] = p
	}
	for rel, m := range byRel {
		// Identical PSNR for the pre-quantization family (Observation 3).
		if m["CereSZ"].PSNR != m["cuSZp"].PSNR {
			t.Fatalf("rel %g: PSNR differs between CereSZ and cuSZp", rel)
		}
		// CereSZ pays more bits than cuSZp (header penalty), SZ pays least.
		if !(m["CereSZ"].BitRate > m["cuSZp"].BitRate && m["cuSZp"].BitRate > m["SZ"].BitRate) {
			t.Fatalf("rel %g: bitrate ordering broken: %v", rel, m)
		}
	}
	// PSNR grows as the bound tightens.
	if !(byRel[1e-5]["CereSZ"].PSNR > byRel[1e-2]["CereSZ"].PSNR) {
		t.Fatal("PSNR not monotone in bound")
	}
	var buf bytes.Buffer
	PrintRateDistortion(&buf, r)
	if !strings.Contains(buf.String(), "Rate-distortion") {
		t.Fatal("output incomplete")
	}
}
