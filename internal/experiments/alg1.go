package experiments

import (
	"fmt"
	"io"

	"ceresz/internal/mapping"
	"ceresz/internal/stages"
)

// Alg1Result demonstrates Algorithm 1 (§4.2): the greedy distribution of
// the compression sub-stages over pipelines of every feasible length, and
// the ⌊C/t₁⌋ maximum-useful-length bound.
type Alg1Result struct {
	StageNames []string
	Costs      []int64
	MaxLen     int
	// Groupings[m] lists the stage groups for pipeline length m+1.
	Groupings [][]mapping.Group
	// Bottlenecks[m] is the slowest group's cycles at length m+1.
	Bottlenecks []int64
}

// Alg1 builds the demonstration for a CESM-like chain (fixed length 17).
func Alg1(cfg Config) (*Alg1Result, error) {
	cfg = cfg.WithDefaults()
	chain, err := stages.NewCompressChain(stages.Config{Eps: 1e-4, EstWidth: 17})
	if err != nil {
		return nil, err
	}
	costs := chain.EstimateCycles(17)
	res := &Alg1Result{
		StageNames: chain.StageNames(),
		Costs:      costs,
		MaxLen:     mapping.MaxPipelineLength(costs),
	}
	for m := 1; m <= res.MaxLen; m++ {
		groups, err := mapping.Distribute(costs, m)
		if err != nil {
			return nil, err
		}
		res.Groupings = append(res.Groupings, groups)
		res.Bottlenecks = append(res.Bottlenecks, mapping.Bottleneck(costs, groups))
	}
	return res, nil
}

// PrintAlg1 renders the distribution demo.
func PrintAlg1(w io.Writer, r *Alg1Result) {
	section(w, "Algorithm 1: greedy sub-stage distribution (CESM-like chain, fl=17)")
	fmt.Fprintln(w, "sub-stages and planning costs (cycles/block):")
	for i, n := range r.StageNames {
		fmt.Fprintf(w, "  %-12s %6d\n", n, r.Costs[i])
	}
	fmt.Fprintf(w, "max useful pipeline length = floor(C/t1) = %d (paper §4.2)\n", r.MaxLen)
	for m, groups := range r.Groupings {
		fmt.Fprintf(w, "length %2d: bottleneck %6d cycles; groups:", m+1, r.Bottlenecks[m])
		for _, g := range groups {
			if g.Len() == 0 {
				fmt.Fprintf(w, " [pass]")
				continue
			}
			fmt.Fprintf(w, " [%s..%s]", r.StageNames[g.Lo], r.StageNames[g.Hi-1])
		}
		fmt.Fprintln(w)
	}
}
