package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestBlockSizeAblation(t *testing.T) {
	rows, err := BlockSizeAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	var best, at32 float64
	for _, r := range rows {
		if r.AvgRatio <= 0 {
			t.Fatalf("block %d: ratio %.2f", r.BlockLen, r.AvgRatio)
		}
		if r.AvgRatio > best {
			best = r.AvgRatio
		}
		if r.BlockLen == 32 {
			at32 = r.AvgRatio
		}
	}
	// The paper's choice must be competitive: within 15% of the sweep's
	// best on our synthetic mix.
	if at32 < 0.85*best {
		t.Fatalf("block 32 ratio %.2f far below best %.2f", at32, best)
	}
	// The extremes must both lose to the interior (the trade-off exists).
	if rows[0].AvgRatio >= best || rows[len(rows)-1].AvgRatio >= best {
		t.Fatalf("no interior optimum: %+v", rows)
	}
}

func TestHeaderAblation(t *testing.T) {
	rows, err := HeaderAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	byDataset := map[string][]HeaderAblationRow{}
	for _, r := range rows {
		if r.Penalty < 1 {
			t.Fatalf("%s %g: u8 ratio below u32 (penalty %.2f)", r.Dataset, r.Rel, r.Penalty)
		}
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	// Observation 2: the penalty relaxes as the bound tightens.
	for ds, rs := range byDataset {
		if !(rs[0].Penalty > rs[2].Penalty) {
			t.Fatalf("%s: penalty did not shrink with tighter bounds: %.2f → %.2f",
				ds, rs[0].Penalty, rs[2].Penalty)
		}
	}
}

func TestEncodingAblation(t *testing.T) {
	r, err := EncodingAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.HuffmanRatio <= r.FixedRatio {
		t.Fatalf("Huffman ratio %.2f not above fixed-length %.2f", r.HuffmanRatio, r.FixedRatio)
	}
	if r.FixedNsPerElem <= 0 || r.HuffmanNsPerElem <= 0 {
		t.Fatalf("degenerate timings %+v", r)
	}
	// The throughput argument of §3: Huffman encoding is slower. (Host
	// wall-clock; allow generous noise but the ordering must hold.)
	if r.HuffmanNsPerElem < r.FixedNsPerElem {
		t.Fatalf("Huffman (%.1f ns/elem) measured faster than fixed-length (%.1f ns/elem)",
			r.HuffmanNsPerElem, r.FixedNsPerElem)
	}
}

func TestZeroBlockAblation(t *testing.T) {
	r, err := ZeroBlockAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.ZeroBlockFrac < 0.3 {
		t.Fatalf("RTM zero fraction %.2f too low for the ablation to mean anything", r.ZeroBlockFrac)
	}
	if r.WithGBps <= r.SansGBps {
		t.Fatalf("fast path did not help throughput: %.1f vs %.1f", r.WithGBps, r.SansGBps)
	}
	if r.WithRatio <= r.SansRatio {
		t.Fatalf("fast path did not help ratio: %.2f vs %.2f", r.WithRatio, r.SansRatio)
	}
}

func TestTuner(t *testing.T) {
	r, err := Tuner(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Unconstrained != 1 {
		t.Fatalf("unconstrained tuner picked %d, want 1 (paper §4.4)", r.Unconstrained)
	}
	if r.TightMemoryErr == nil {
		t.Fatal("tight-memory case did not error")
	}
	if len(r.Points) < 2 {
		t.Fatalf("tuner evaluated %d candidates", len(r.Points))
	}
	// Feed-bound regime: any feasible choice ties, so the tuner may keep 1
	// but must have evaluated the same candidates.
	if r.SlowFeed < 1 {
		t.Fatalf("slow-feed selection %d", r.SlowFeed)
	}
}

func TestPrintAblations(t *testing.T) {
	cfg := quickCfg()
	blocks, err := BlockSizeAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	headers, err := HeaderAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodingAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := ZeroBlockAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := Tuner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintAblations(&buf, blocks, headers, enc, zero, tuner)
	for _, want := range []string{"block length", "headers", "Huffman", "zero-block", "tuner"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}

func TestUtilization(t *testing.T) {
	r, err := Utilization(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("%d rows, want 10", len(r.Rows))
	}
	byMode := map[bool]map[int]UtilizationRow{true: {}, false: {}}
	for _, row := range r.Rows {
		if row.MeanUtilization <= 0 || row.MeanUtilization > 1 {
			t.Fatalf("utilization %g out of range", row.MeanUtilization)
		}
		if row.Cycles <= 0 {
			t.Fatal("no cycles recorded")
		}
		byMode[row.ProcessorRelay][row.PipelineLen] = row
	}
	// Router relay must not be slower than processor relay anywhere, and
	// must strictly cut the aggregate relay share for pl ≥ 2.
	for pl, proc := range byMode[true] {
		routed := byMode[false][pl]
		if routed.Cycles > proc.Cycles {
			t.Fatalf("pl=%d: router mode slower (%d vs %d cycles)", pl, routed.Cycles, proc.Cycles)
		}
		if pl >= 2 && routed.RelayShare >= proc.RelayShare {
			t.Fatalf("pl=%d: router mode relay share %.3f not below processor mode %.3f",
				pl, routed.RelayShare, proc.RelayShare)
		}
	}
	var buf bytes.Buffer
	PrintUtilization(&buf, r)
	if !strings.Contains(buf.String(), "utilization") {
		t.Fatal("output incomplete")
	}
}

func TestQuality(t *testing.T) {
	r, err := Quality(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 18 {
		t.Fatalf("%d cells, want 18", len(r.Cells))
	}
	byDataset := map[string][]QualityCell{}
	for _, c := range r.Cells {
		// The error-bound contract, normalized: max |err|/range ≤ REL.
		if c.MaxRelEr > c.Rel*(1+1e-9) {
			t.Fatalf("%s %g: max relative error %g exceeds the bound", c.Dataset, c.Rel, c.MaxRelEr)
		}
		if c.PSNR < 20 {
			t.Fatalf("%s %g: implausible PSNR %.1f", c.Dataset, c.Rel, c.PSNR)
		}
		byDataset[c.Dataset] = append(byDataset[c.Dataset], c)
	}
	// PSNR improves ~20 dB per decade of bound.
	for ds, cells := range byDataset {
		if !(cells[2].PSNR > cells[0].PSNR+25) {
			t.Fatalf("%s: PSNR did not improve across bounds: %v", ds, cells)
		}
	}
	// HACC is 1D → no SSIM; CESM is 2D → SSIM present and near 1 at 1e-4.
	for _, c := range r.Cells {
		if c.Dataset == "HACC" && c.SSIM >= 0 {
			t.Fatal("SSIM computed for 1D HACC")
		}
		if c.Dataset == "CESM-ATM" && c.Rel == 1e-4 && c.SSIM < 0.999 {
			t.Fatalf("CESM SSIM %g at 1e-4", c.SSIM)
		}
	}
	var buf bytes.Buffer
	PrintQuality(&buf, r)
	if !strings.Contains(buf.String(), "PSNR") {
		t.Fatal("output incomplete")
	}
}

func TestExtras(t *testing.T) {
	r, err := Extras(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 18 { // 6 datasets × 3 codecs
		t.Fatalf("%d rows, want 18", len(r.Rows))
	}
	byKey := map[string]ExtraRow{}
	for _, row := range r.Rows {
		if row.AvgRatio <= 0 || row.ModeledGBps <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		byKey[row.Dataset+"|"+row.Compressor] = row
	}
	// cuSZx's block-centered quantization must beat cuSZp's ratio on HACC
	// (offset-dominated positions).
	if !(byKey["HACC|cuSZx"].AvgRatio > byKey["HACC|cuSZp"].AvgRatio) {
		t.Fatalf("cuSZx %.2f not above cuSZp %.2f on HACC",
			byKey["HACC|cuSZx"].AvgRatio, byKey["HACC|cuSZp"].AvgRatio)
	}
	var buf bytes.Buffer
	PrintExtras(&buf, r)
	if !strings.Contains(buf.String(), "cuSZx") {
		t.Fatal("output incomplete")
	}
}

func TestCheck(t *testing.T) {
	r, err := Check(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("self-check failed: %v", r.Failed)
	}
	if len(r.Passed) < 10 {
		t.Fatalf("only %d invariants checked", len(r.Passed))
	}
	var buf bytes.Buffer
	PrintCheck(&buf, r)
	if !strings.Contains(buf.String(), "all invariants hold") {
		t.Fatal("output incomplete")
	}
}
