package ceresz

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus host-codec
// microbenchmarks. The per-experiment benchmarks execute the same code as
// cmd/cereszbench and report the headline quantity of each figure through
// b.ReportMetric, so a bench run doubles as a regeneration pass.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"

	"ceresz/internal/baselines"
	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/experiments"
	"ceresz/internal/lorenzo"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
)

func benchCfg() experiments.Config {
	return experiments.Config{Seed: 7, MaxFieldsPerDataset: 2}
}

func benchField(b *testing.B, dataset string, idx int) []float32 {
	b.Helper()
	ds, err := datasets.ByName(dataset, datasets.Small)
	if err != nil {
		b.Fatal(err)
	}
	return ds.Fields[idx].Data(7)
}

// --- Host codec microbenchmarks ---

func BenchmarkHostCompress(b *testing.B) {
	data := benchField(b, "NYX", 3)
	var comp []byte
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		comp, _, err = Compress(comp[:0], data, REL(1e-3), Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostCompressTelemetry is BenchmarkHostCompress with the
// host-path registry recording — pairs with it to verify the <5% enabled
// overhead contract (the disabled case is the plain benchmark, since the
// registry starts off).
func BenchmarkHostCompressTelemetry(b *testing.B) {
	EnableTelemetry()
	defer DisableTelemetry()
	data := benchField(b, "NYX", 3)
	var comp []byte
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		comp, _, err = Compress(comp[:0], data, REL(1e-3), Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHostCompressSequential(b *testing.B) {
	data := benchField(b, "NYX", 3)
	var comp []byte
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		comp, _, err = Compress(comp[:0], data, REL(1e-3), Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostCompressAlloc asserts the zero-alloc steady-state contract
// before timing: after one warm-up call sizes the destination and fills
// the worker pool, sequential CompressInto must stay off the heap.
func BenchmarkHostCompressAlloc(b *testing.B) {
	data := benchField(b, "NYX", 3)
	opts := Options{Workers: 1}
	var stats Stats
	comp, err := CompressInto(nil, data, REL(1e-3), opts, &stats)
	if err != nil {
		b.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		comp, err = CompressInto(comp[:0], data, REL(1e-3), opts, &stats)
		if err != nil {
			b.Fatal(err)
		}
	})
	if allocs != 0 {
		b.Fatalf("steady-state CompressInto allocates %.1f times per op, want 0", allocs)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err = CompressInto(comp[:0], data, REL(1e-3), opts, &stats)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// hostBenchWorkers returns the worker counts the parallel host-codec
// benchmarks sweep: 1, 2 and the powers of two up to NumCPU (deduped).
// workers=2 is always present so the shard/stitch machinery is measured
// even on a single-core host, where the pool caps concurrency but not
// shard count.
func hostBenchWorkers() []int {
	ws := []int{1, 2}
	for w := 4; w <= runtime.NumCPU(); w *= 2 {
		ws = append(ws, w)
	}
	if n := runtime.NumCPU(); n > 2 && ws[len(ws)-1] != n {
		ws = append(ws, n)
	}
	return ws
}

func benchHostCompressWorkers(b *testing.B, workers int) {
	data := benchField(b, "NYX", 3)
	var comp []byte
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		comp, _, err = Compress(comp[:0], data, REL(1e-3), Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchHostDecompressWorkers(b *testing.B, workers int) {
	data := benchField(b, "NYX", 3)
	comp, _, err := Compress(nil, data, REL(1e-3), Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	var out []float32
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err = DecompressWith(out[:0], comp, Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostCompressParallel sweeps the block-parallel compressor over
// worker counts. The CERESZ_HOST_WORKERS environment variable pins a
// single flat-named run instead — benchdiff strips only the -GOMAXPROCS
// suffix when pairing, so a CERESZ_HOST_WORKERS=1 pass and a
// CERESZ_HOST_WORKERS=N pass produce identical benchmark names and diff
// cleanly (the same idiom as CERESZ_SIM_WORKERS for the simulator).
func BenchmarkHostCompressParallel(b *testing.B) {
	if s := os.Getenv("CERESZ_HOST_WORKERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("CERESZ_HOST_WORKERS=%q: %v", s, err)
		}
		benchHostCompressWorkers(b, n)
		return
	}
	for _, w := range hostBenchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchHostCompressWorkers(b, w)
		})
	}
}

// BenchmarkHostDecompressParallel is the decode-side twin of
// BenchmarkHostCompressParallel, with the same CERESZ_HOST_WORKERS
// pairing contract.
func BenchmarkHostDecompressParallel(b *testing.B) {
	if s := os.Getenv("CERESZ_HOST_WORKERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("CERESZ_HOST_WORKERS=%q: %v", s, err)
		}
		benchHostDecompressWorkers(b, n)
		return
	}
	for _, w := range hostBenchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchHostDecompressWorkers(b, w)
		})
	}
}

func BenchmarkHostDecompress(b *testing.B) {
	data := benchField(b, "NYX", 3)
	comp, _, err := Compress(nil, data, REL(1e-3), Options{})
	if err != nil {
		b.Fatal(err)
	}
	var out []float32
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err = Decompress(out[:0], comp)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantize(b *testing.B) {
	data := benchField(b, "CESM-ATM", 1)
	q, err := quant.NewQuantizer(1e-3)
	if err != nil {
		b.Fatal(err)
	}
	codes := make([]int32, len(data))
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Quantize(codes, data)
	}
}

func BenchmarkLorenzo1D(b *testing.B) {
	codes := make([]int32, 1<<20)
	for i := range codes {
		codes[i] = int32(i % 1000)
	}
	out := make([]int32, len(codes))
	b.SetBytes(int64(4 * len(codes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lorenzo.Forward(out, codes)
	}
}

func BenchmarkBaselineSZ3(b *testing.B) {
	ds, err := datasets.ByName("CESM-ATM", datasets.Small)
	if err != nil {
		b.Fatal(err)
	}
	f := &ds.Fields[1]
	data := f.Data(7)
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(1e-3).Resolve(minV, maxV)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (baselines.SZ3{}).Compress(data, f.Dims, eps); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per table/figure ---

// BenchmarkTable1StageCycles regenerates Tables 1–3 and reports the modeled
// FL-encode cycles for the CESM-like profile.
func BenchmarkTable1StageCycles(b *testing.B) {
	var rows []experiments.StageProfileRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.StageProfiles(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].FLEncode), "flenc-cycles")
	b.ReportMetric(float64(rows[0].PreQuant), "prequant-cycles")
}

// BenchmarkFig7RowScaling regenerates Fig. 7 and reports the 512-row
// projected throughput.
func BenchmarkFig7RowScaling(b *testing.B) {
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := r.Points[len(r.Points)-1]
	b.ReportMetric(last.ThroughputMBps/1000, "GBps-at-512-rows")
	if r.LinearityErr != nil {
		b.Fatalf("linearity violated: %v", r.LinearityErr)
	}
}

// BenchmarkFig10Profiling regenerates the Fig. 10 relay/execution profiles.
func BenchmarkFig10Profiling(b *testing.B) {
	var r *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.A[len(r.A)-1].RelayCyclesPerBlock, "relay-cycles-32col")
}

// BenchmarkFig11Compression regenerates the Fig. 11 throughput comparison
// and reports the CereSZ average and the speedup over cuSZp.
func BenchmarkFig11Compression(b *testing.B) {
	var r *experiments.ThroughputResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Throughput(benchCfg(), stages.Compress)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.CereSZAvg, "ceresz-GBps")
	b.ReportMetric(r.CereSZAvg/r.CuSZpAvg, "speedup-vs-cuszp")
}

// BenchmarkFig12Decompression regenerates Fig. 12.
func BenchmarkFig12Decompression(b *testing.B) {
	var r *experiments.ThroughputResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Throughput(benchCfg(), stages.Decompress)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.CereSZAvg, "ceresz-GBps")
	b.ReportMetric(r.CereSZAvg/r.CuSZpAvg, "speedup-vs-cuszp")
}

// BenchmarkFig13PipelineLength regenerates the pipeline-length sweep and
// reports the single-PE-to-8-PE throughput ratio on QMCPack.
func BenchmarkFig13PipelineLength(b *testing.B) {
	var r *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig13(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if !r.SinglePEFastest {
		b.Fatal("single-PE pipeline not fastest")
	}
	b.ReportMetric(r.Points[0].ThroughputGBps/r.Points[5].ThroughputGBps, "pl1-over-pl8")
}

// BenchmarkFig14WSESize regenerates the mesh-size sweep and reports the
// full-wafer projected throughput on CESM-ATM.
func BenchmarkFig14WSESize(b *testing.B) {
	var r *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig14(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range r.Points {
		if p.Dataset == "CESM-ATM" && p.Rows == 750 {
			b.ReportMetric(p.ThroughputGBps, "fullwafer-GBps")
		}
	}
	b.ReportMetric(r.QuadruplingRatio["CESM-ATM"], "16to32-speedup")
}

// BenchmarkTable5Ratios regenerates the ratio table and reports the CereSZ
// NYX average at REL 1e-2 (paper: 20.22 on the real data).
func BenchmarkTable5Ratios(b *testing.B) {
	var r *experiments.Table5Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Table5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if c, ok := r.Find("CereSZ", "NYX", 1e-2); ok {
		b.ReportMetric(c.Avg, "nyx-ratio-1e2")
	}
}

// BenchmarkFig15Quality regenerates the data-quality comparison and reports
// PSNR (paper: 84.77 dB on the real NYX velocity_x).
func BenchmarkFig15Quality(b *testing.B) {
	var r *experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig15(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if !r.Identical {
		b.Fatal("CereSZ and cuSZp reconstructions differ")
	}
	if math.IsInf(r.PSNR, 0) {
		b.Fatal("degenerate PSNR")
	}
	b.ReportMetric(r.PSNR, "psnr-dB")
	b.ReportMetric(r.SSIM, "ssim")
}

// BenchmarkAlg1Distribute measures the stage-distribution algorithm itself.
func BenchmarkAlg1Distribute(b *testing.B) {
	var r *experiments.Alg1Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Alg1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.MaxLen), "max-pipeline-len")
}

// BenchmarkSimulatedPipeline measures the event simulator itself: one row
// of eight single-PE pipelines compressing 2048 blocks.
func BenchmarkSimulatedPipeline(b *testing.B) {
	data := make([]float32, 32*2048)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.01))
	}
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateCompress(data, REL(1e-3), MeshConfig{Rows: 1, Cols: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benchmarks (ablations, rate-distortion, streaming, f64) ---

// BenchmarkAblationBlockSize regenerates the block-length sweep.
func BenchmarkAblationBlockSize(b *testing.B) {
	var rows []experiments.BlockSizeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.BlockSizeAblation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.BlockLen == 32 {
			b.ReportMetric(r.AvgRatio, "ratio-at-32")
		}
	}
}

// BenchmarkAblationEncoding regenerates the fixed-length-vs-Huffman trade.
func BenchmarkAblationEncoding(b *testing.B) {
	var r *experiments.EncodingAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.EncodingAblation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.HuffmanRatio/r.FixedRatio, "huffman-ratio-gain")
	b.ReportMetric(r.HuffmanNsPerElem/r.FixedNsPerElem, "huffman-slowdown")
}

// BenchmarkRateDistortion regenerates the §5.4 sweep.
func BenchmarkRateDistortion(b *testing.B) {
	var r *experiments.RateDistortionResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RateDistortion(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Points)), "points")
}

// BenchmarkStreamWriter measures framed chunked compression end to end.
func BenchmarkStreamWriter(b *testing.B) {
	chunk := benchField(b, "Hurricane", 0)
	b.SetBytes(int64(4 * len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw := NewStreamWriter(discardWriter{}, ABS(1e-3), Options{})
		if _, err := sw.WriteChunk(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkHostCompress64 measures the double-precision path.
func BenchmarkHostCompress64(b *testing.B) {
	f32 := benchField(b, "NYX", 3)
	data := make([]float64, len(f32))
	for i, v := range f32 {
		data[i] = float64(v)
	}
	var comp []byte
	b.SetBytes(int64(8 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		comp, _, err = Compress64(comp[:0], data, REL(1e-6), Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTiledCompress measures the 2D-predictor variant (strided
// gather is the §3-predicted cost).
func BenchmarkTiledCompress(b *testing.B) {
	ds, err := datasets.ByName("CESM-ATM", datasets.Small)
	if err != nil {
		b.Fatal(err)
	}
	f := &ds.Fields[1]
	data := f.Data(7)
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(1e-3).Resolve(minV, maxV)
	if err != nil {
		b.Fatal(err)
	}
	var comp []byte
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, _, err = core.CompressTiled(comp[:0], data, f.Dims, eps, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQualityTable regenerates the dataset-wide PSNR/SSIM table.
func BenchmarkQualityTable(b *testing.B) {
	var r *experiments.QualityResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Quality(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Cells)), "cells")
}

// BenchmarkExtrasFamily regenerates the extended-family comparison.
func BenchmarkExtrasFamily(b *testing.B) {
	var r *experiments.ExtrasResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Extras(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		if row.Dataset == "HACC" && row.Compressor == "cuSZx" {
			b.ReportMetric(row.AvgRatio, "cuszx-hacc-ratio")
		}
	}
}

// BenchmarkSelfCheck runs the functional-invariant self-check.
func BenchmarkSelfCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Check(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if !r.OK() {
			b.Fatalf("self-check failed: %v", r.Failed)
		}
	}
}

// BenchmarkUtilization regenerates the PE-utilization sweep.
func BenchmarkUtilization(b *testing.B) {
	var r *experiments.UtilizationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Utilization(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Rows[0].MeanUtilization, "pl1-utilization")
}
