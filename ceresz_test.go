package ceresz

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func testField(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.01
		data[i] = float32(math.Sin(float64(i)*0.01)*2 + v)
	}
	return data
}

func TestPublicRoundTrip(t *testing.T) {
	data := testField(10_000, 1)
	comp, stats, err := Compress(nil, data, REL(1e-3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratio() <= 1 {
		t.Fatalf("ratio %.2f", stats.Ratio())
	}
	rec, err := Decompress(nil, comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if e := math.Abs(float64(rec[i]) - float64(data[i])); e > stats.Eps {
			t.Fatalf("error %g > ε at %d", e, i)
		}
	}
}

func TestPublicParse(t *testing.T) {
	data := testField(1000, 2)
	comp, stats, err := Compress(nil, data, ABS(1e-2), Options{BlockLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := Parse(comp)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Elements != 1000 || meta.BlockLen != 64 || meta.Eps != stats.Eps {
		t.Fatalf("meta %+v", meta)
	}
	if _, err := Parse(comp[:10]); err == nil {
		t.Fatal("parsed truncated stream")
	}
}

func TestPublicSZpHeaderOption(t *testing.T) {
	data := testField(2048, 3)
	a, sa, err := Compress(nil, data, REL(1e-3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Compress(nil, data, REL(1e-3), Options{SZpHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if sb.Ratio() <= sa.Ratio() {
		t.Fatalf("SZp headers did not improve ratio: %.3f vs %.3f", sb.Ratio(), sa.Ratio())
	}
	ra, err := Decompress(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Decompress(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("header size changed the reconstruction at %d", i)
		}
	}
}

func TestPublicCompressWithEps(t *testing.T) {
	data := testField(512, 4)
	comp, stats, err := CompressWithEps(nil, data, 5e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Eps != 5e-3 {
		t.Fatalf("eps %g", stats.Eps)
	}
	if _, _, err := CompressWithEps(nil, data, 0, Options{}); err == nil {
		t.Fatal("accepted ε=0")
	}
	if _, err := Decompress(nil, comp); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateMatchesHost(t *testing.T) {
	data := testField(32*64, 5)
	host, _, err := Compress(nil, data, REL(1e-3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateCompress(data, REL(1e-3), MeshConfig{Rows: 2, Cols: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Bytes, host) {
		t.Fatal("simulated stream differs from host stream")
	}
	if res.Cycles <= 0 || res.Seconds <= 0 || res.ThroughputGBps <= 0 {
		t.Fatalf("degenerate sim result %+v", res)
	}

	dres, err := SimulateDecompress(host, MeshConfig{Rows: 2, Cols: 4, PipelineLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Decompress(nil, host)
	if err != nil {
		t.Fatal(err)
	}
	if len(dres.Data) != len(rec) {
		t.Fatalf("lengths differ: %d vs %d", len(dres.Data), len(rec))
	}
	for i := range rec {
		if dres.Data[i] != rec[i] {
			t.Fatalf("simulated decompression differs at %d", i)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	data := testField(320, 6)
	if _, err := SimulateCompress(data, ABS(0), MeshConfig{Rows: 1, Cols: 1}); err == nil {
		t.Fatal("accepted ε=0")
	}
	if _, err := SimulateCompress(data, REL(1e-3), MeshConfig{Rows: 0, Cols: 1}); err == nil {
		t.Fatal("accepted zero-row mesh")
	}
	if _, err := SimulateDecompress([]byte("junk"), MeshConfig{Rows: 1, Cols: 1}); err == nil {
		t.Fatal("accepted junk stream")
	}
	// Non-default block lengths are a host-only feature.
	comp, _, err := Compress(nil, data, REL(1e-3), Options{BlockLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateDecompress(comp, MeshConfig{Rows: 1, Cols: 1}); err == nil {
		t.Fatal("simulated decompression accepted a 64-element-block stream")
	}
}

func TestBoundConstructors(t *testing.T) {
	if _, _, err := Compress(nil, testField(64, 7), REL(0), Options{}); err == nil {
		t.Fatal("accepted REL(0)")
	}
	if _, _, err := Compress(nil, testField(64, 7), ABS(-1), Options{}); err == nil {
		t.Fatal("accepted ABS(-1)")
	}
}
