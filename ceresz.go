// Package ceresz is a Go reproduction of CereSZ, the error-bounded lossy
// compressor for the Cerebras CS-2 wafer-scale engine (Song et al., HPDC
// 2024). It provides:
//
//   - a fast host implementation of the CereSZ algorithm — block-wise
//     pre-quantization, 1D Lorenzo prediction and fixed-length encoding —
//     with a strict error-bound guarantee (Compress / Decompress);
//   - a discrete-event simulator of the CS-2's 2D PE mesh together with
//     the paper's three parallelization strategies, which runs the real
//     compression kernels and produces byte-identical streams
//     (SimulateCompress / SimulateDecompress);
//   - the paper's baselines (SZp, cuSZp, cuSZ, SZ), synthetic SDRBench
//     datasets, quality metrics, and a harness regenerating every table
//     and figure of the paper's evaluation (internal/experiments,
//     cmd/cereszbench).
//
// Quick start:
//
//	comp, stats, err := ceresz.Compress(nil, data, ceresz.REL(1e-3), ceresz.Options{})
//	...
//	rec, err := ceresz.Decompress(data[:0], comp)
//
// Every element of the reconstruction differs from the original by at most
// the resolved absolute bound ε (stats.Eps); blocks for which float32
// rounding cannot honor the bound are stored verbatim.
package ceresz

import (
	"fmt"

	"ceresz/internal/core"
	"ceresz/internal/flenc"
	"ceresz/internal/mapping"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// Bound is a user error bound: ABS(ε) or REL(λ) (value-range relative).
type Bound = quant.Bound

// ABS returns an absolute error bound ε > 0.
func ABS(eps float64) Bound { return quant.ABS(eps) }

// REL returns a value-range-relative error bound λ > 0 (the paper's REL
// mode, §5.1.3): ε = λ · (max − min).
func REL(lambda float64) Bound { return quant.REL(lambda) }

// Options tunes a host compression pass. The zero value is the paper's
// configuration: 32-element blocks, 4-byte block headers, sequential
// (zero-allocation) execution.
type Options struct {
	// BlockLen is the elements per block (positive multiple of 8;
	// 0 = 32, the paper's choice).
	BlockLen int
	// SZpHeader selects 1-byte block headers (the SZp/cuSZp stream format)
	// instead of CereSZ's 4-byte WSE-aligned headers.
	SZpHeader bool
	// Workers caps host parallelism. 0 and 1 run sequentially — the
	// zero-allocation steady-state path; values > 1 shard the call's
	// blocks across a shared worker pool (output bytes are identical at
	// any count); negative uses all CPU cores.
	Workers int
}

func (o Options) coreOptions(b Bound) core.Options {
	hdr := flenc.HeaderU32
	if o.SZpHeader {
		hdr = flenc.HeaderU8
	}
	return core.Options{
		Bound:       b,
		BlockLen:    o.BlockLen,
		HeaderBytes: hdr,
		Workers:     o.Workers,
	}
}

// Stats reports what a compression pass produced.
type Stats = core.Stats

// Meta describes a parsed stream header.
type Meta = core.Meta

// Compress appends the CereSZ stream for data to dst (which may be nil).
func Compress(dst []byte, data []float32, bound Bound, opts Options) ([]byte, *Stats, error) {
	return core.Compress(dst, data, opts.coreOptions(bound))
}

// CompressInto is Compress writing its statistics into a caller-provided
// Stats (overwritten, not accumulated). With Workers: 1 and a dst of
// sufficient capacity the whole pass performs zero heap allocations, which
// makes it the right entry point for steady-state ingest loops.
func CompressInto(dst []byte, data []float32, bound Bound, opts Options, stats *Stats) ([]byte, error) {
	return core.CompressInto(dst, data, opts.coreOptions(bound), stats)
}

// CompressWithEps is Compress with a pre-resolved absolute ε, so multiple
// fields or compressors can share one bound.
func CompressWithEps(dst []byte, data []float32, eps float64, opts Options) ([]byte, *Stats, error) {
	return core.CompressWithEps(dst, data, eps, opts.coreOptions(Bound{}))
}

// CompressWithEpsInto is CompressWithEps writing into a caller-provided
// Stats, allocation-free in steady state like CompressInto.
func CompressWithEpsInto(dst []byte, data []float32, eps float64, opts Options, stats *Stats) ([]byte, error) {
	return core.CompressWithEpsInto(dst, data, eps, opts.coreOptions(Bound{}), stats)
}

// Decompress reconstructs the float32 data from a CereSZ stream, appending
// to dst (which may be nil). It runs sequentially; use DecompressWith to
// shard a large stream across CPU cores.
func Decompress(dst []float32, comp []byte) ([]float32, error) {
	out, _, err := core.Decompress(dst, comp, 0)
	return out, err
}

// DecompressWith is Decompress honoring opts.Workers (only the Workers
// field matters on the decode path: block geometry comes from the stream).
func DecompressWith(dst []float32, comp []byte, opts Options) ([]float32, error) {
	out, _, err := core.Decompress(dst, comp, opts.Workers)
	return out, err
}

// Parse returns the stream's metadata without decompressing it.
func Parse(comp []byte) (Meta, error) {
	return core.ParseHeader(comp)
}

// MeshConfig selects a simulated WSE geometry and pipeline shape.
type MeshConfig struct {
	// Rows and Cols give the PE mesh (the full CS-2 exposes 750×994).
	Rows, Cols int
	// PipelineLen is the PEs per pipeline (0 = 1, the paper's optimum).
	PipelineLen int
	// EstWidth is the planning fixed length for Algorithm 1 (0 = sample
	// the data, the paper's 5% sampling strategy).
	EstWidth int
}

// SimResult is the outcome of a simulated WSE run.
type SimResult struct {
	// Bytes is the compressed stream (compression runs); byte-identical
	// to the host Compress output for the same parameters.
	Bytes []byte
	// Data is the reconstruction (decompression runs).
	Data []float32
	// Cycles is the completion time of the last PE.
	Cycles int64
	// Seconds is Cycles at 850 MHz.
	Seconds float64
	// ThroughputGBps is uncompressed bytes / Seconds / 1e9.
	ThroughputGBps float64
	// Telemetry is the run's instrument snapshot: simulated cycle totals
	// split by compute/relay/send, active-PE and memory gauges, estimated
	// versus measured per-stage-group load, and the host wall time of the
	// simulation. Always populated — each run has a private registry.
	Telemetry Telemetry
}

// SimulateCompress runs CereSZ compression on a simulated WSE mesh. The
// returned stream is verified byte-identical to the host compressor's by
// the package tests; use it to study scaling rather than to compress fast.
func SimulateCompress(data []float32, bound Bound, mesh MeshConfig) (*SimResult, error) {
	minV, maxV := quant.Range(data)
	eps, err := bound.Resolve(minV, maxV)
	if err != nil {
		return nil, err
	}
	estWidth := mesh.EstWidth
	if estWidth == 0 {
		w, err := stages.EstimateWidth(data, eps, core.DefaultBlockLen, 20)
		if err != nil {
			return nil, err
		}
		estWidth = int(w)
	}
	chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: estWidth})
	if err != nil {
		return nil, err
	}
	plan, err := mapping.NewPlan(chain, mapping.PlanConfig{
		Mesh:        wse.Config{Rows: mesh.Rows, Cols: mesh.Cols},
		PipelineLen: pipelineLen(mesh),
	})
	if err != nil {
		return nil, err
	}
	res, err := plan.Compress(data)
	if err != nil {
		return nil, err
	}
	return &SimResult{
		Bytes:          res.Bytes,
		Cycles:         res.Cycles,
		Seconds:        res.Seconds,
		ThroughputGBps: res.ThroughputGBps,
		Telemetry:      res.Telemetry,
	}, nil
}

// SimulateDecompress runs CereSZ decompression on a simulated WSE mesh.
func SimulateDecompress(comp []byte, mesh MeshConfig) (*SimResult, error) {
	meta, err := core.ParseHeader(comp)
	if err != nil {
		return nil, err
	}
	if meta.BlockLen != core.DefaultBlockLen {
		return nil, fmt.Errorf("ceresz: simulation supports the paper's block length %d, stream has %d",
			core.DefaultBlockLen, meta.BlockLen)
	}
	estWidth := mesh.EstWidth
	if estWidth == 0 {
		estWidth = 8
	}
	chain, err := stages.NewDecompressChain(stages.Config{
		Eps:         meta.Eps,
		EstWidth:    estWidth,
		HeaderBytes: meta.HeaderBytes,
	})
	if err != nil {
		return nil, err
	}
	plan, err := mapping.NewPlan(chain, mapping.PlanConfig{
		Mesh:        wse.Config{Rows: mesh.Rows, Cols: mesh.Cols},
		PipelineLen: pipelineLen(mesh),
	})
	if err != nil {
		return nil, err
	}
	res, err := plan.Decompress(comp)
	if err != nil {
		return nil, err
	}
	return &SimResult{
		Data:           res.Data,
		Cycles:         res.Cycles,
		Seconds:        res.Seconds,
		ThroughputGBps: res.ThroughputGBps,
		Telemetry:      res.Telemetry,
	}, nil
}

func pipelineLen(m MeshConfig) int {
	if m.PipelineLen == 0 {
		return 1
	}
	return m.PipelineLen
}
