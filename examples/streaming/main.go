// Streaming: compress an unbounded instrument stream chunk by chunk with a
// fixed absolute bound — the LCLS-style inline-compression scenario from
// the paper's introduction (data produced faster than it can be stored).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ceresz"
)

// sensorChunk simulates one acquisition window from an instrument.
func sensorChunk(rng *rand.Rand, t0 float64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		t := t0 + float64(i)*1e-4
		out[i] = float32(40*math.Sin(2*math.Pi*3*t)*math.Exp(-t*0.1) + rng.NormFloat64()*0.02)
	}
	return out
}

func main() {
	const (
		chunkElems = 64 * 1024
		chunks     = 32
		eps        = 1e-2 // fixed ABS bound: detectors have known noise floors
	)
	rng := rand.New(rand.NewSource(42))

	var inBytes, outBytes int
	var worstErr float64
	for c := 0; c < chunks; c++ {
		chunk := sensorChunk(rng, float64(c)*chunkElems*1e-4, chunkElems)

		// Each chunk is an independent stream: a reader can seek to and
		// decode any window without the rest — the property that lets the
		// WSE process blocks independently applies at chunk granularity
		// for storage too.
		comp, _, err := ceresz.Compress(nil, chunk, ceresz.ABS(eps), ceresz.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := ceresz.Decompress(nil, comp)
		if err != nil {
			log.Fatal(err)
		}
		for i := range chunk {
			if e := math.Abs(float64(rec[i]) - float64(chunk[i])); e > worstErr {
				worstErr = e
			}
		}
		inBytes += 4 * len(chunk)
		outBytes += len(comp)
		if c%8 == 0 {
			fmt.Printf("chunk %2d: %7d -> %7d bytes (ratio %.2f)\n",
				c, 4*len(chunk), len(comp), float64(4*len(chunk))/float64(len(comp)))
		}
	}
	fmt.Printf("\nstream total: %d -> %d bytes (ratio %.2f), worst |error| %.3g ≤ ε %.3g: %v\n",
		inBytes, outBytes, float64(inBytes)/float64(outBytes), worstErr, float64(eps), worstErr <= eps)
}
