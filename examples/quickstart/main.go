// Quickstart: compress a float32 field with an error bound, decompress it,
// and verify the bound — the minimal CereSZ round trip.
package main

import (
	"fmt"
	"log"
	"math"

	"ceresz"
)

func main() {
	// A smooth synthetic signal, as scientific fields tend to be.
	data := make([]float32, 100_000)
	for i := range data {
		x := float64(i) * 0.001
		data[i] = float32(math.Sin(x) + 0.3*math.Sin(7*x) + 0.05*math.Cos(31*x))
	}

	// Compress within a value-range-relative bound of 1e-3: every element
	// of the reconstruction will be within λ·(max−min) of the original.
	comp, stats, err := ceresz.Compress(nil, data, ceresz.REL(1e-3), ceresz.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d floats: %d -> %d bytes (ratio %.2f)\n",
		len(data), 4*len(data), len(comp), stats.Ratio())
	fmt.Printf("resolved ε = %.3g; %d blocks, %d zero blocks, mean fixed length %.1f bits\n",
		stats.Eps, stats.Blocks, stats.ZeroBlocks, stats.MeanWidth())

	rec, err := ceresz.Decompress(nil, comp)
	if err != nil {
		log.Fatal(err)
	}

	var maxErr float64
	for i := range data {
		if e := math.Abs(float64(rec[i]) - float64(data[i])); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max |error| = %.3g (bound %.3g) — %v\n", maxErr, stats.Eps, maxErr <= stats.Eps)
}
