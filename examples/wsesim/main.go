// WSE simulation: map CereSZ onto a simulated Cerebras mesh, verify the
// pipeline's stream matches the host compressor bit for bit, and show the
// paper's row scaling (§4.1) and pipeline-length effect (§4.4, Fig. 13).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"ceresz"
)

func main() {
	data := make([]float32, 32*2048)
	for i := range data {
		x := float64(i) * 0.002
		data[i] = float32(math.Sin(x)*2 + 0.2*math.Sin(13*x))
	}

	// Host reference stream.
	host, _, err := ceresz.Compress(nil, data, ceresz.REL(1e-3), ceresz.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("row scaling (1 column, single-PE pipelines):")
	fmt.Printf("%6s %14s %18s\n", "rows", "cycles", "throughput MB/s")
	for _, rows := range []int{1, 2, 4, 8} {
		res, err := ceresz.SimulateCompress(data, ceresz.REL(1e-3), ceresz.MeshConfig{Rows: rows, Cols: 1})
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(res.Bytes, host) {
			log.Fatalf("rows=%d: simulated stream differs from host stream", rows)
		}
		fmt.Printf("%6d %14d %18.1f\n", rows, res.Cycles, res.ThroughputGBps*1000)
	}
	fmt.Println("(simulated streams verified byte-identical to the host compressor)")

	fmt.Println("\npipeline length on a 2x8 mesh (paper Fig. 13: single-PE wins):")
	fmt.Printf("%14s %14s %18s\n", "pipeline len", "cycles", "throughput MB/s")
	for _, pl := range []int{1, 2, 4} {
		res, err := ceresz.SimulateCompress(data, ceresz.REL(1e-3), ceresz.MeshConfig{Rows: 2, Cols: 8, PipelineLen: pl})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%14d %14d %18.1f\n", pl, res.Cycles, res.ThroughputGBps*1000)
	}

	// Round-trip through the simulated decompression pipeline too.
	dres, err := ceresz.SimulateDecompress(host, ceresz.MeshConfig{Rows: 2, Cols: 4})
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	for i := range data {
		if e := math.Abs(float64(dres.Data[i]) - float64(data[i])); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("\nsimulated decompression: %d elements reconstructed, max |error| %.3g\n", len(dres.Data), maxErr)
}
