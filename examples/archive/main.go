// Archive: the file-based workflow — write a field to disk under the
// SDRBench naming convention, scan the directory, load the field with its
// dims recovered from the name, compress with the tiled 2D predictor, and
// verify the bound. This is the path a user with the real SDRBench
// archives follows.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/metrics"
	"ceresz/internal/quant"
	"ceresz/internal/sdrbench"
)

func main() {
	dir, err := os.MkdirTemp("", "ceresz-archive")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Produce a Hurricane-like field file named the SDRBench way:
	// name_[slowest…fastest].f32.
	ds, err := datasets.ByName("Hurricane", datasets.Small)
	if err != nil {
		log.Fatal(err)
	}
	f := &ds.Fields[0]
	data := f.Data(7)
	name := fmt.Sprintf("%s_%d_%d_%d.f32", f.Name, f.Dims.Nz, f.Dims.Ny, f.Dims.Nx)
	if err := sdrbench.WriteF32(filepath.Join(dir, name), data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d elements)\n", name, len(data))

	// Scan the directory as a user with real archives would.
	fields, err := sdrbench.Scan(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, fld := range fields {
		field, loaded, err := sdrbench.Load(fld.Path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: dims %dx%dx%d recovered from the file name\n",
			field.Name, field.Dims.Nx, field.Dims.Ny, field.Dims.Nz)

		minV, maxV := quant.Range(loaded)
		eps, err := quant.REL(1e-3).Resolve(minV, maxV)
		if err != nil {
			log.Fatal(err)
		}

		// The dims enable the tiled 2D-Lorenzo variant (§3's "CereSZ can
		// support higher-dimensional prediction").
		comp1d, s1d, err := core.CompressWithEps(nil, loaded, eps, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		comp2d, s2d, err := core.CompressTiled(nil, loaded, field.Dims, eps, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("1D predictor:       %7d bytes (ratio %.2f)\n", len(comp1d), s1d.Ratio())
		fmt.Printf("tiled 2D predictor: %7d bytes (ratio %.2f)\n", len(comp2d), s2d.Ratio())

		rec, err := core.DecompressTiled(nil, comp2d, field.Dims)
		if err != nil {
			log.Fatal(err)
		}
		maxErr, err := metrics.MaxAbsError(loaded, rec)
		if err != nil {
			log.Fatal(err)
		}
		psnr, err := metrics.PSNR(loaded, rec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round trip: max |error| %.3g ≤ ε %.3g (%v), PSNR %.2f dB\n",
			maxErr, eps, maxErr <= eps, psnr)
	}
}
