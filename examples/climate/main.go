// Climate: compress a CESM-like 2D climate field at the paper's three
// error bounds and report ratio, PSNR and SSIM — the §5.3/§5.4 workflow on
// one field.
package main

import (
	"fmt"
	"log"

	"ceresz"
	"ceresz/internal/datasets"
	"ceresz/internal/metrics"
)

func main() {
	ds, err := datasets.ByName("CESM-ATM", datasets.Small)
	if err != nil {
		log.Fatal(err)
	}
	field := &ds.Fields[1]
	data := field.Data(7)
	fmt.Printf("field %s/%s: %dx%d (%d elements, %.1f KB)\n",
		ds.Name, field.Name, field.Dims.Nx, field.Dims.Ny, len(data), float64(4*len(data))/1024)

	fmt.Printf("%-10s %10s %12s %10s %10s\n", "bound", "ratio", "bits/elem", "PSNR dB", "SSIM")
	for _, rel := range []float64{1e-2, 1e-3, 1e-4} {
		comp, stats, err := ceresz.Compress(nil, data, ceresz.REL(rel), ceresz.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := ceresz.Decompress(nil, comp)
		if err != nil {
			log.Fatal(err)
		}
		psnr, err := metrics.PSNR(data, rec)
		if err != nil {
			log.Fatal(err)
		}
		ssim, err := metrics.SSIM(data, rec, field.Dims)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("REL %-6.0e %10.2f %12.3f %10.2f %10.6f\n",
			rel, stats.Ratio(), metrics.BitRate(len(data), len(comp)), psnr, ssim)
	}
	fmt.Println("\ntighter bounds cost ratio but buy quality — the rate-distortion trade of §5.4")
}
