package ceresz

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"ceresz/internal/core"
	"ceresz/internal/lorenzo"
	"ceresz/internal/telemetry"
)

// Bundle instruments (Default registry; active after EnableTelemetry).
var (
	telBundleAdd  = telemetry.T("bundle.add_field")
	telBundleRead = telemetry.T("bundle.read_field")
)

// Bundles: a whole multi-field dataset (Table 4 datasets have up to 79
// fields) compressed into one self-describing file with an index, so any
// field can be decompressed without touching the others. Layout:
//
//	offset size  field
//	0      4     magic "CSZB"
//	4      4     version (1) + field count packed as u8 version, u24 count
//	8      …     index: per field u16 nameLen, name bytes, u32 Nx, u32 Ny,
//	             u32 Nz, u64 stream offset (from body start), u64 length
//	…      …     body: concatenated CereSZ streams
//
// Each member stream is an ordinary container (Compress/Compress64), so a
// member extracted by offset is decodable on its own.

var bundleMagic = [4]byte{'C', 'S', 'Z', 'B'}

const bundleVersion = 1

// Dims describes a field's grid in bundle metadata (row-major, Nx fastest;
// unused dims are 1).
type Dims = lorenzo.Dims

// Dims1, Dims2 and Dims3 build grid descriptors.
var (
	Dims1 = lorenzo.Dims1
	Dims2 = lorenzo.Dims2
	Dims3 = lorenzo.Dims3
)

// BundleField describes one indexed member.
type BundleField struct {
	// Name is the field's identifier within the bundle.
	Name string
	// Dims is the field's grid.
	Dims Dims
	// Elem is the element type.
	Elem Elem
	// CompressedBytes is the member stream's size.
	CompressedBytes int
	// Eps is the member's resolved absolute bound.
	Eps float64
}

// BundleWriter accumulates compressed fields and assembles the bundle.
// Member streams are compressed back to back into one contiguous arena —
// one growing buffer for the whole bundle instead of a fresh slice per
// field, so adding N fields costs O(log) buffer growths rather than N
// allocations sized to each stream. Not safe for concurrent use.
type BundleWriter struct {
	fields []BundleField
	arena  []byte   // concatenated member streams (the future body)
	spans  [][2]int // per-field [start, end) into arena
	stats  Stats    // scratch for the *Into compression calls
	names  map[string]bool
}

// NewBundleWriter returns an empty bundle writer.
func NewBundleWriter() *BundleWriter {
	return &BundleWriter{names: map[string]bool{}}
}

// AddField compresses a float32 field under bound and indexes it.
func (bw *BundleWriter) AddField(name string, dims Dims, data []float32, bound Bound, opts Options) (*Stats, error) {
	defer telBundleAdd.Start().End()
	if err := bw.checkName(name); err != nil {
		return nil, err
	}
	if err := dims.Validate(len(data)); err != nil {
		return nil, err
	}
	start := len(bw.arena)
	arena, err := CompressInto(bw.arena, data, bound, opts, &bw.stats)
	if err != nil {
		return nil, err
	}
	bw.arena = arena
	bw.push(name, dims, Float32, start, len(arena), bw.stats.Eps)
	out := bw.stats
	return &out, nil
}

// AddField64 compresses a float64 field under bound and indexes it.
func (bw *BundleWriter) AddField64(name string, dims Dims, data []float64, bound Bound, opts Options) (*Stats, error) {
	defer telBundleAdd.Start().End()
	if err := bw.checkName(name); err != nil {
		return nil, err
	}
	if err := dims.Validate(len(data)); err != nil {
		return nil, err
	}
	start := len(bw.arena)
	arena, err := Compress64Into(bw.arena, data, bound, opts, &bw.stats)
	if err != nil {
		return nil, err
	}
	bw.arena = arena
	bw.push(name, dims, Float64, start, len(arena), bw.stats.Eps)
	out := bw.stats
	return &out, nil
}

func (bw *BundleWriter) checkName(name string) error {
	if name == "" {
		return fmt.Errorf("ceresz: empty field name")
	}
	if len(name) > math.MaxUint16 {
		return fmt.Errorf("ceresz: field name %q too long", name[:32])
	}
	if bw.names[name] {
		return fmt.Errorf("ceresz: duplicate field %q", name)
	}
	return nil
}

func (bw *BundleWriter) push(name string, dims Dims, elem Elem, start, end int, eps float64) {
	bw.names[name] = true
	bw.fields = append(bw.fields, BundleField{
		Name: name, Dims: dims, Elem: elem,
		CompressedBytes: end - start, Eps: eps,
	})
	bw.spans = append(bw.spans, [2]int{start, end})
}

// Bytes assembles the bundle in one exactly-sized allocation: the index is
// computable from the field table alone and the body is the arena.
func (bw *BundleWriter) Bytes() ([]byte, error) {
	if len(bw.fields) == 0 {
		return nil, fmt.Errorf("ceresz: empty bundle")
	}
	if len(bw.fields) >= 1<<24 {
		return nil, fmt.Errorf("ceresz: too many fields (%d)", len(bw.fields))
	}
	size := 8
	for _, f := range bw.fields {
		size += 2 + len(f.Name) + 12 + 16
	}
	size += len(bw.arena)
	out := make([]byte, 0, size)
	out = append(out, bundleMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(bundleVersion)|uint32(len(bw.fields))<<8)
	var off uint64
	for i, f := range bw.fields {
		n := uint64(bw.spans[i][1] - bw.spans[i][0])
		out = binary.LittleEndian.AppendUint16(out, uint16(len(f.Name)))
		out = append(out, f.Name...)
		out = binary.LittleEndian.AppendUint32(out, uint32(f.Dims.Nx))
		out = binary.LittleEndian.AppendUint32(out, uint32(f.Dims.Ny))
		out = binary.LittleEndian.AppendUint32(out, uint32(f.Dims.Nz))
		out = binary.LittleEndian.AppendUint64(out, off)
		out = binary.LittleEndian.AppendUint64(out, n)
		off += n
	}
	out = append(out, bw.arena...)
	return out, nil
}

// BundleReader provides random access to a bundle's members.
type BundleReader struct {
	fields []BundleField
	byName map[string]int
	body   []byte
	spans  [][2]uint64
}

// minIndexEntryBytes is the smallest possible per-field index entry: a
// u16 name length (empty name rejected later), three u32 dims, u64 offset
// and u64 length.
const minIndexEntryBytes = 2 + 12 + 16

// OpenBundle parses a bundle's index. The data is not copied.
func OpenBundle(b []byte) (*BundleReader, error) {
	return OpenBundleLimited(b, 0, 0)
}

// OpenBundleLimited is OpenBundle with decode limits for untrusted input:
// maxFieldBytes caps any member stream's compressed size and
// maxFieldElements caps any member's declared element count (0 leaves the
// respective limit off). Violations surface as ErrFrameTooLarge during
// index validation, before any member is decompressed; truncation surfaces
// as ErrTruncated.
func OpenBundleLimited(b []byte, maxFieldBytes, maxFieldElements int) (*BundleReader, error) {
	if len(b) < 8 || [4]byte(b[0:4]) != bundleMagic {
		return nil, fmt.Errorf("ceresz: not a bundle")
	}
	vc := binary.LittleEndian.Uint32(b[4:])
	if v := vc & 0xFF; v != bundleVersion {
		return nil, fmt.Errorf("ceresz: unsupported bundle version %d", v)
	}
	count := int(vc >> 8)
	// A count the remaining bytes cannot possibly index is hostile or
	// corrupt; reject it before sizing anything by it.
	if count*minIndexEntryBytes > len(b)-8 {
		return nil, fmt.Errorf("%w: bundle declares %d fields, %d bytes cannot index them",
			ErrTruncated, count, len(b))
	}
	br := &BundleReader{byName: make(map[string]int, count)}
	pos := 8
	need := func(k int) error {
		if len(b)-pos < k {
			return fmt.Errorf("%w: bundle index at %d", ErrTruncated, pos)
		}
		return nil
	}
	for i := 0; i < count; i++ {
		if err := need(2); err != nil {
			return nil, err
		}
		nameLen := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		if err := need(nameLen + 12 + 16); err != nil {
			return nil, err
		}
		name := string(b[pos : pos+nameLen])
		pos += nameLen
		d := Dims{
			Nx: int(binary.LittleEndian.Uint32(b[pos:])),
			Ny: int(binary.LittleEndian.Uint32(b[pos+4:])),
			Nz: int(binary.LittleEndian.Uint32(b[pos+8:])),
		}
		pos += 12
		off := binary.LittleEndian.Uint64(b[pos:])
		ln := binary.LittleEndian.Uint64(b[pos+8:])
		pos += 16
		if _, dup := br.byName[name]; dup {
			return nil, fmt.Errorf("ceresz: duplicate bundle field %q", name)
		}
		br.byName[name] = i
		br.fields = append(br.fields, BundleField{Name: name, Dims: d})
		br.spans = append(br.spans, [2]uint64{off, ln})
	}
	br.body = b[pos:]
	// Validate spans and fill per-field metadata from the member headers.
	for i, sp := range br.spans {
		end := sp[0] + sp[1]
		if end < sp[0] || end > uint64(len(br.body)) || sp[1] == 0 {
			return nil, fmt.Errorf("%w: bundle member %q overruns body", ErrTruncated, br.fields[i].Name)
		}
		if maxFieldBytes > 0 && sp[1] > uint64(maxFieldBytes) {
			return nil, fmt.Errorf("%w: bundle member %q is %d bytes, cap is %d",
				ErrFrameTooLarge, br.fields[i].Name, sp[1], maxFieldBytes)
		}
		member := br.body[sp[0]:end]
		meta, err := core.ParseHeader(member)
		if err != nil {
			return nil, fmt.Errorf("ceresz: bundle member %q: %w", br.fields[i].Name, err)
		}
		if maxFieldElements > 0 && meta.Elements > maxFieldElements {
			return nil, fmt.Errorf("%w: bundle member %q declares %d elements, cap is %d",
				ErrFrameTooLarge, br.fields[i].Name, meta.Elements, maxFieldElements)
		}
		if len(member) < meta.MinStreamBytes() {
			return nil, fmt.Errorf("%w: bundle member %q declares %d elements, %d bytes cannot hold them",
				ErrTruncated, br.fields[i].Name, meta.Elements, len(member))
		}
		if br.fields[i].Dims.Len() != meta.Elements {
			return nil, fmt.Errorf("ceresz: bundle member %q: dims say %d elements, stream has %d",
				br.fields[i].Name, br.fields[i].Dims.Len(), meta.Elements)
		}
		br.fields[i].Elem = meta.Elem
		br.fields[i].Eps = meta.Eps
		br.fields[i].CompressedBytes = int(sp[1])
	}
	return br, nil
}

// Fields lists the members in index order.
func (br *BundleReader) Fields() []BundleField {
	out := make([]BundleField, len(br.fields))
	copy(out, br.fields)
	return out
}

// Names lists the member names, sorted.
func (br *BundleReader) Names() []string {
	out := make([]string, 0, len(br.byName))
	for n := range br.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// member returns the named member's raw stream.
func (br *BundleReader) member(name string) ([]byte, BundleField, error) {
	i, ok := br.byName[name]
	if !ok {
		return nil, BundleField{}, fmt.Errorf("ceresz: bundle has no field %q (have %v)", name, br.Names())
	}
	sp := br.spans[i]
	return br.body[sp[0] : sp[0]+sp[1]], br.fields[i], nil
}

// ReadField decompresses a float32 member.
func (br *BundleReader) ReadField(name string) ([]float32, BundleField, error) {
	defer telBundleRead.Start().End()
	stream, f, err := br.member(name)
	if err != nil {
		return nil, f, err
	}
	if f.Elem != Float32 {
		return nil, f, fmt.Errorf("ceresz: field %q holds %s; use ReadField64", name, f.Elem)
	}
	out, err := Decompress(nil, stream)
	return out, f, err
}

// ReadField64 decompresses a float64 member.
func (br *BundleReader) ReadField64(name string) ([]float64, BundleField, error) {
	defer telBundleRead.Start().End()
	stream, f, err := br.member(name)
	if err != nil {
		return nil, f, err
	}
	if f.Elem != Float64 {
		return nil, f, fmt.Errorf("ceresz: field %q holds %s; use ReadField", name, f.Elem)
	}
	out, err := Decompress64(nil, stream)
	return out, f, err
}
