package ceresz

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"ceresz/internal/core"
)

// Fuzz targets for the container-adjacent formats: bundles and framed
// streams must reject arbitrary bytes without panicking and round-trip
// valid inputs.

func FuzzOpenBundle(f *testing.F) {
	bw := NewBundleWriter()
	if _, err := bw.AddField("a", Dims1(64), testField(64, 1), ABS(1e-2), Options{}); err != nil {
		f.Fatal(err)
	}
	if _, err := bw.AddField("b", Dims2(8, 8), testField(64, 2), REL(1e-3), Options{}); err != nil {
		f.Fatal(err)
	}
	valid, err := bw.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CSZB"))
	mut := append([]byte(nil), valid...)
	mut[9] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		br, err := OpenBundle(b)
		if err != nil {
			return
		}
		for _, name := range br.Names() {
			fields := br.Fields()
			_ = fields
			if data, field, err := br.ReadField(name); err == nil {
				if field.Dims.Len() != len(data) {
					t.Fatalf("field %q: dims say %d, decoded %d", name, field.Dims.Len(), len(data))
				}
			}
			_, _, _ = br.ReadField64(name)
		}
	})
}

// FuzzStreamFrames drives the hardened frame-decode path the server uses:
// arbitrary bytes through NextInto with decode limits set must never panic
// and never allocate proportionally to a hostile length field. Valid
// round-trip streams must keep decoding.
func FuzzStreamFrames(f *testing.F) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-2), Options{Workers: 1})
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := sw.WriteChunk(testField(257, seed)); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(buf.Bytes())
	var b64 bytes.Buffer
	sw64 := NewStreamWriter(&b64, REL(1e-3), Options{Workers: 1})
	data64 := make([]float64, 300)
	for i := range data64 {
		data64[i] = float64(i) * 0.25
	}
	if _, err := sw64.WriteChunk64(data64); err != nil {
		f.Fatal(err)
	}
	f.Add(b64.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CSZF\xff\xff\xff\x7f")) // 2GB length, no body
	f.Add([]byte("CSZF\x10\x00\x00\x00CSZ1tooshort"))

	f.Fuzz(func(t *testing.T, b []byte) {
		sr := NewStreamReader(bytes.NewReader(b))
		sr.SetLimits(1<<20, 1<<18)
		var out []float32
		for i := 0; i < 32; i++ {
			var err error
			out, err = sr.NextInto(out[:0])
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFrameTooLarge) &&
					!errors.Is(err, core.ErrBadStream) && !strings.Contains(err.Error(), "ceresz:") {
					t.Fatalf("unexpected error type: %v", err)
				}
				return
			}
			if len(out) > 1<<18 {
				t.Fatalf("decoded %d elements past the configured cap", len(out))
			}
		}
	})
}

// FuzzBundle drives OpenBundleLimited with the server's decode caps over
// arbitrary bytes: no panics, typed rejections, and members that do open
// must honor their index metadata.
func FuzzBundle(f *testing.F) {
	bw := NewBundleWriter()
	if _, err := bw.AddField("temp", Dims2(16, 16), testField(256, 5), ABS(1e-3), Options{Workers: 1}); err != nil {
		f.Fatal(err)
	}
	d64 := make([]float64, 128)
	for i := range d64 {
		d64[i] = math.Sqrt(float64(i))
	}
	if _, err := bw.AddField64("pres", Dims1(128), d64, ABS(1e-6), Options{Workers: 1}); err != nil {
		f.Fatal(err)
	}
	valid, err := bw.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// Hostile field count with no index behind it.
	f.Add([]byte{'C', 'S', 'Z', 'B', 1, 0xFF, 0xFF, 0xFF})
	trunc := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(trunc)
	mut := append([]byte(nil), valid...)
	mut[12] ^= 0x80
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		br, err := OpenBundleLimited(b, 1<<20, 1<<18)
		if err != nil {
			return
		}
		for _, field := range br.Fields() {
			if field.CompressedBytes > 1<<20 {
				t.Fatalf("field %q passed validation with %d compressed bytes", field.Name, field.CompressedBytes)
			}
			if data, fi, err := br.ReadField(field.Name); err == nil {
				if fi.Dims.Len() != len(data) {
					t.Fatalf("field %q: dims say %d, decoded %d", field.Name, fi.Dims.Len(), len(data))
				}
			}
			if data, fi, err := br.ReadField64(field.Name); err == nil {
				if fi.Dims.Len() != len(data) {
					t.Fatalf("field %q: dims say %d, decoded %d", field.Name, fi.Dims.Len(), len(data))
				}
			}
		}
	})
}

func FuzzStreamReader(f *testing.F) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-2), Options{})
	if _, err := sw.WriteChunk(testField(500, 3)); err != nil {
		f.Fatal(err)
	}
	if _, err := sw.WriteChunk(testField(100, 4)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CSZF\x00\x00\x00\x10short"))

	f.Fuzz(func(t *testing.T, b []byte) {
		sr := NewStreamReader(bytes.NewReader(b))
		for i := 0; i < 16; i++ {
			if _, err := sr.Next(); err != nil {
				if err == io.EOF {
					return
				}
				return // rejection is fine
			}
		}
	})
}
