package ceresz

import (
	"bytes"
	"io"
	"testing"
)

// Fuzz targets for the container-adjacent formats: bundles and framed
// streams must reject arbitrary bytes without panicking and round-trip
// valid inputs.

func FuzzOpenBundle(f *testing.F) {
	bw := NewBundleWriter()
	if _, err := bw.AddField("a", Dims1(64), testField(64, 1), ABS(1e-2), Options{}); err != nil {
		f.Fatal(err)
	}
	if _, err := bw.AddField("b", Dims2(8, 8), testField(64, 2), REL(1e-3), Options{}); err != nil {
		f.Fatal(err)
	}
	valid, err := bw.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CSZB"))
	mut := append([]byte(nil), valid...)
	mut[9] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		br, err := OpenBundle(b)
		if err != nil {
			return
		}
		for _, name := range br.Names() {
			fields := br.Fields()
			_ = fields
			if data, field, err := br.ReadField(name); err == nil {
				if field.Dims.Len() != len(data) {
					t.Fatalf("field %q: dims say %d, decoded %d", name, field.Dims.Len(), len(data))
				}
			}
			_, _, _ = br.ReadField64(name)
		}
	})
}

func FuzzStreamReader(f *testing.F) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-2), Options{})
	if _, err := sw.WriteChunk(testField(500, 3)); err != nil {
		f.Fatal(err)
	}
	if _, err := sw.WriteChunk(testField(100, 4)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CSZF\x00\x00\x00\x10short"))

	f.Fuzz(func(t *testing.T, b []byte) {
		sr := NewStreamReader(bytes.NewReader(b))
		for i := 0; i < 16; i++ {
			if _, err := sr.Next(); err != nil {
				if err == io.EOF {
					return
				}
				return // rejection is fine
			}
		}
	})
}
