package ceresz

import (
	"bytes"
	"io"
	"math"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-3), Options{})
	var chunks [][]float32
	for c := 0; c < 5; c++ {
		chunk := testField(1000+c*37, int64(c))
		chunks = append(chunks, chunk)
		stats, err := sw.WriteChunk(chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", c, err)
		}
		if stats.Eps != 1e-3 {
			t.Fatalf("chunk %d: eps %g", c, stats.Eps)
		}
	}
	if sw.Chunks != 5 || sw.Ratio() <= 1 {
		t.Fatalf("writer stats: chunks=%d ratio=%.2f", sw.Chunks, sw.Ratio())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.WriteChunk(chunks[0]); err != ErrStreamClosed {
		t.Fatalf("write after close: %v", err)
	}

	sr := NewStreamReader(bytes.NewReader(buf.Bytes()))
	for c, want := range chunks {
		got, err := sr.Next()
		if err != nil {
			t.Fatalf("chunk %d: %v", c, err)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d elements, want %d", c, len(got), len(want))
		}
		for i := range want {
			if e := math.Abs(float64(got[i]) - float64(want[i])); e > 1e-3 {
				t.Fatalf("chunk %d elem %d: error %g", c, i, e)
			}
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestStreamRoundTrip64(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-8), Options{})
	data := make([]float64, 2000)
	for i := range data {
		data[i] = math.Sin(float64(i) * 0.003)
	}
	if _, err := sw.WriteChunk64(data); err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReader(bytes.NewReader(buf.Bytes()))
	got, err := sr.Next64()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if e := math.Abs(got[i] - data[i]); e > 1e-8 {
			t.Fatalf("elem %d: error %g", i, e)
		}
	}
}

func TestStreamSkip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-2), Options{})
	for c := 0; c < 3; c++ {
		if _, err := sw.WriteChunk(testField(512, int64(c))); err != nil {
			t.Fatal(err)
		}
	}
	sr := NewStreamReader(bytes.NewReader(buf.Bytes()))
	// Skip two frames, decode the third.
	for i := 0; i < 2; i++ {
		meta, err := sr.Skip()
		if err != nil {
			t.Fatal(err)
		}
		if meta.Elements != 512 {
			t.Fatalf("skip %d: %d elements", i, meta.Elements)
		}
	}
	got, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := testField(512, 2)
	for i := range want {
		if e := math.Abs(float64(got[i]) - float64(want[i])); e > 1e-2 {
			t.Fatalf("random access decode wrong at %d", i)
		}
	}
}

func TestStreamCorruptFrames(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-2), Options{})
	if _, err := sw.WriteChunk(testField(256, 1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := NewStreamReader(bytes.NewReader(bad)).Next(); err == nil {
		t.Fatal("accepted bad frame magic")
	}
	// Truncated payload.
	if _, err := NewStreamReader(bytes.NewReader(raw[:len(raw)-5])).Next(); err == nil {
		t.Fatal("accepted truncated frame")
	}
	// Truncated header.
	if _, err := NewStreamReader(bytes.NewReader(raw[:4])).Next(); err == nil {
		t.Fatal("accepted truncated header")
	}
	// Empty stream is a clean EOF.
	if _, err := NewStreamReader(bytes.NewReader(nil)).Next(); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestStreamRELPerChunk(t *testing.T) {
	// A REL bound resolves against each chunk's own range.
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, REL(1e-2), Options{})
	small := make([]float32, 256)
	big := make([]float32, 256)
	for i := range small {
		small[i] = float32(i%16) * 0.01 // range ~0.15
		big[i] = float32(i%16) * 100    // range ~1500
	}
	s1, err := sw.WriteChunk(small)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sw.WriteChunk(big)
	if err != nil {
		t.Fatal(err)
	}
	if !(s2.Eps > s1.Eps*100) {
		t.Fatalf("REL ε did not scale per chunk: %g vs %g", s1.Eps, s2.Eps)
	}
}

func TestPublicFloat64API(t *testing.T) {
	data := make([]float64, 5000)
	for i := range data {
		data[i] = math.Cos(float64(i)*0.01) * 42
	}
	comp, stats, err := Compress64(nil, data, REL(1e-6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e, err := ElemOf(comp); err != nil || e != Float64 {
		t.Fatalf("ElemOf = %v, %v", e, err)
	}
	rec, err := Decompress64(nil, comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if e := math.Abs(rec[i] - data[i]); e > stats.Eps {
			t.Fatalf("error %g > ε at %d", e, i)
		}
	}
	// Meta via Parse reports the element type.
	meta, err := Parse(comp)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Elem != Float64 {
		t.Fatalf("meta elem %v", meta.Elem)
	}
	if _, err := Decompress(nil, comp); err == nil {
		t.Fatal("f32 Decompress accepted f64 stream")
	}
	if _, _, err := Compress64WithEps(nil, data, -1, Options{}); err == nil {
		t.Fatal("accepted negative eps")
	}
}

func TestStreamWriterRatioEmpty(t *testing.T) {
	sw := NewStreamWriter(&bytes.Buffer{}, ABS(1e-3), Options{})
	if sw.Ratio() != 0 {
		t.Fatalf("empty stream ratio %g, want 0", sw.Ratio())
	}
}

func TestStreamWriterChunkErrors(t *testing.T) {
	sw := NewStreamWriter(&bytes.Buffer{}, ABS(0), Options{})
	if _, err := sw.WriteChunk(testField(64, 9)); err == nil {
		t.Fatal("accepted zero bound")
	}
	if _, err := sw.WriteChunk64([]float64{1, 2}); err == nil {
		t.Fatal("accepted zero bound (f64)")
	}
}
