package ceresz

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-3), Options{})
	var chunks [][]float32
	for c := 0; c < 5; c++ {
		chunk := testField(1000+c*37, int64(c))
		chunks = append(chunks, chunk)
		stats, err := sw.WriteChunk(chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", c, err)
		}
		if stats.Eps != 1e-3 {
			t.Fatalf("chunk %d: eps %g", c, stats.Eps)
		}
	}
	if sw.Chunks != 5 || sw.Ratio() <= 1 {
		t.Fatalf("writer stats: chunks=%d ratio=%.2f", sw.Chunks, sw.Ratio())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.WriteChunk(chunks[0]); err != ErrStreamClosed {
		t.Fatalf("write after close: %v", err)
	}

	sr := NewStreamReader(bytes.NewReader(buf.Bytes()))
	for c, want := range chunks {
		got, err := sr.Next()
		if err != nil {
			t.Fatalf("chunk %d: %v", c, err)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d elements, want %d", c, len(got), len(want))
		}
		for i := range want {
			if e := math.Abs(float64(got[i]) - float64(want[i])); e > 1e-3 {
				t.Fatalf("chunk %d elem %d: error %g", c, i, e)
			}
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestStreamRoundTrip64(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-8), Options{})
	data := make([]float64, 2000)
	for i := range data {
		data[i] = math.Sin(float64(i) * 0.003)
	}
	if _, err := sw.WriteChunk64(data); err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReader(bytes.NewReader(buf.Bytes()))
	got, err := sr.Next64()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if e := math.Abs(got[i] - data[i]); e > 1e-8 {
			t.Fatalf("elem %d: error %g", i, e)
		}
	}
}

func TestStreamSkip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-2), Options{})
	for c := 0; c < 3; c++ {
		if _, err := sw.WriteChunk(testField(512, int64(c))); err != nil {
			t.Fatal(err)
		}
	}
	sr := NewStreamReader(bytes.NewReader(buf.Bytes()))
	// Skip two frames, decode the third.
	for i := 0; i < 2; i++ {
		meta, err := sr.Skip()
		if err != nil {
			t.Fatal(err)
		}
		if meta.Elements != 512 {
			t.Fatalf("skip %d: %d elements", i, meta.Elements)
		}
	}
	got, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := testField(512, 2)
	for i := range want {
		if e := math.Abs(float64(got[i]) - float64(want[i])); e > 1e-2 {
			t.Fatalf("random access decode wrong at %d", i)
		}
	}
}

func TestStreamCorruptFrames(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-2), Options{})
	if _, err := sw.WriteChunk(testField(256, 1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := NewStreamReader(bytes.NewReader(bad)).Next(); err == nil {
		t.Fatal("accepted bad frame magic")
	}
	// Truncated payload.
	if _, err := NewStreamReader(bytes.NewReader(raw[:len(raw)-5])).Next(); err == nil {
		t.Fatal("accepted truncated frame")
	}
	// Truncated header.
	if _, err := NewStreamReader(bytes.NewReader(raw[:4])).Next(); err == nil {
		t.Fatal("accepted truncated header")
	}
	// Empty stream is a clean EOF.
	if _, err := NewStreamReader(bytes.NewReader(nil)).Next(); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestStreamRELPerChunk(t *testing.T) {
	// A REL bound resolves against each chunk's own range.
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, REL(1e-2), Options{})
	small := make([]float32, 256)
	big := make([]float32, 256)
	for i := range small {
		small[i] = float32(i%16) * 0.01 // range ~0.15
		big[i] = float32(i%16) * 100    // range ~1500
	}
	s1, err := sw.WriteChunk(small)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sw.WriteChunk(big)
	if err != nil {
		t.Fatal(err)
	}
	if !(s2.Eps > s1.Eps*100) {
		t.Fatalf("REL ε did not scale per chunk: %g vs %g", s1.Eps, s2.Eps)
	}
}

func TestPublicFloat64API(t *testing.T) {
	data := make([]float64, 5000)
	for i := range data {
		data[i] = math.Cos(float64(i)*0.01) * 42
	}
	comp, stats, err := Compress64(nil, data, REL(1e-6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e, err := ElemOf(comp); err != nil || e != Float64 {
		t.Fatalf("ElemOf = %v, %v", e, err)
	}
	rec, err := Decompress64(nil, comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if e := math.Abs(rec[i] - data[i]); e > stats.Eps {
			t.Fatalf("error %g > ε at %d", e, i)
		}
	}
	// Meta via Parse reports the element type.
	meta, err := Parse(comp)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Elem != Float64 {
		t.Fatalf("meta elem %v", meta.Elem)
	}
	if _, err := Decompress(nil, comp); err == nil {
		t.Fatal("f32 Decompress accepted f64 stream")
	}
	if _, _, err := Compress64WithEps(nil, data, -1, Options{}); err == nil {
		t.Fatal("accepted negative eps")
	}
}

func TestStreamWriterRatioEmpty(t *testing.T) {
	sw := NewStreamWriter(&bytes.Buffer{}, ABS(1e-3), Options{})
	if sw.Ratio() != 0 {
		t.Fatalf("empty stream ratio %g, want 0", sw.Ratio())
	}
}

func TestStreamWriterChunkErrors(t *testing.T) {
	sw := NewStreamWriter(&bytes.Buffer{}, ABS(0), Options{})
	if _, err := sw.WriteChunk(testField(64, 9)); err == nil {
		t.Fatal("accepted zero bound")
	}
	if _, err := sw.WriteChunk64([]float64{1, 2}); err == nil {
		t.Fatal("accepted zero bound (f64)")
	}
}

func TestStreamReaderTypedErrors(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, ABS(1e-3), Options{Workers: 1})
	if _, err := sw.WriteChunk(testField(500, 11)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncated mid-payload.
	sr := NewStreamReader(bytes.NewReader(full[:len(full)-7]))
	if _, err := sr.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated payload: got %v, want ErrTruncated", err)
	}
	// Truncated mid-header.
	sr = NewStreamReader(bytes.NewReader(full[:5]))
	if _, err := sr.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated header: got %v, want ErrTruncated", err)
	}
	// Clean EOF stays io.EOF, not ErrTruncated.
	sr = NewStreamReader(bytes.NewReader(nil))
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("empty source: got %v, want io.EOF", err)
	}

	// Frame-length cap: a hostile 2GB-1 length field must be rejected
	// without the reader allocating anything near that size.
	hostile := []byte{'C', 'S', 'Z', 'F', 0xFF, 0xFF, 0xFF, 0x7F}
	sr = NewStreamReader(bytes.NewReader(hostile))
	sr.SetLimits(1<<16, 0)
	if _, err := sr.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile length: got %v, want ErrFrameTooLarge", err)
	}
	if cap(sr.buf) != 0 {
		t.Fatalf("rejected frame still allocated %d bytes", cap(sr.buf))
	}

	// A plausible length with no body behind it stops at ErrTruncated after
	// at most one bounded read step, even unlimited.
	hostileBody := []byte{'C', 'S', 'Z', 'F', 0xFF, 0xFF, 0xFF, 0x7F, 'x'}
	sr = NewStreamReader(bytes.NewReader(hostileBody))
	if _, err := sr.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("hostile length, tiny body: got %v, want ErrTruncated", err)
	}
	if cap(sr.buf) > 4<<20 {
		t.Fatalf("truncated 2GB claim allocated %d bytes", cap(sr.buf))
	}

	// Element cap applies before the decode sizes its output.
	sr = NewStreamReader(bytes.NewReader(full))
	sr.SetLimits(0, 10)
	if _, err := sr.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("element cap: got %v, want ErrFrameTooLarge", err)
	}

	// Within limits the same stream still decodes.
	sr = NewStreamReader(bytes.NewReader(full))
	sr.SetLimits(1<<20, 1<<20)
	if _, err := sr.Next(); err != nil {
		t.Fatalf("within limits: %v", err)
	}
}

func TestStreamReaderReset(t *testing.T) {
	var a, b bytes.Buffer
	for i, buf := range []*bytes.Buffer{&a, &b} {
		sw := NewStreamWriter(buf, ABS(1e-3), Options{Workers: 1})
		if _, err := sw.WriteChunk(testField(300, int64(20+i))); err != nil {
			t.Fatal(err)
		}
	}
	sr := NewStreamReader(bytes.NewReader(a.Bytes()))
	first, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	sr.Reset(bytes.NewReader(b.Bytes()))
	second, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 300 || len(second) != 300 {
		t.Fatalf("chunk lengths %d, %d", len(first), len(second))
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("after reset-consume: got %v, want io.EOF", err)
	}
}

func TestDecompressImplausibleElementCount(t *testing.T) {
	comp, _, err := Compress(nil, testField(64, 31), ABS(1e-3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Inflate the header's element count far past what the body can hold:
	// the decoder must reject it before sizing the output.
	hostile := append([]byte(nil), comp...)
	binary.LittleEndian.PutUint64(hostile[8:16], 1<<40)
	if _, err := Decompress(nil, hostile); err == nil {
		t.Fatal("accepted element count the body cannot hold")
	}
}
