package ceresz

import "ceresz/internal/telemetry"

// Telemetry is a point-in-time snapshot of the instrumentation registry:
// named counters, gauges (with ".max" high-water entries), timers and
// power-of-two histograms. It marshals directly to JSON and renders as
// sorted text via String.
//
// Two registries exist. Simulated runs each carry a private one, returned
// in SimResult.Telemetry, so concurrent simulations never mix. The host
// compression path (Compress / Decompress, StreamWriter, Bundle*) shares a
// process-wide registry that starts disabled and costs one branch per
// instrument until EnableTelemetry is called.
type Telemetry = telemetry.Snapshot

// TimerStats is a timer's aggregate inside a Telemetry snapshot.
type TimerStats = telemetry.TimerStats

// HistStats is a histogram's aggregate inside a Telemetry snapshot.
type HistStats = telemetry.HistStats

// EnableTelemetry turns on the process-wide host-path registry. The host
// compressor then records per-stage timings (sampled), block and byte
// counters, and worker occupancy, at well under 5% overhead.
func EnableTelemetry() { telemetry.Enable() }

// DisableTelemetry turns the host-path registry back off.
func DisableTelemetry() { telemetry.Disable() }

// TelemetryEnabled reports whether the host-path registry is recording.
func TelemetryEnabled() bool { return telemetry.Enabled() }

// HostTelemetry snapshots the process-wide host-path registry (what
// `ceresz -stats` prints after a run).
func HostTelemetry() Telemetry { return telemetry.Default.Snapshot() }
